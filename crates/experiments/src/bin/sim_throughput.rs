//! **sim_throughput** — the repo's performance instrument: how fast does
//! the simulator simulate?
//!
//! Sweeps the 14 workloads across core counts (full: 1/4/8/16; `--quick`:
//! 16-core only at test scale, sized for CI), timing each unobserved
//! run median-of-N, and reports simulated cycles per host second plus
//! host-MIPS (committed simulated instructions per host second). Results
//! go to a machine-readable `BENCH_simthroughput.json` — the repo's perf
//! trajectory — and a headline line for `final_verify.sh`:
//!
//! ```text
//! SIM_THROUGHPUT: 12.34 Mcycles/s, 5.67 host-MIPS (8.90s wall, 42 runs)
//! ```
//!
//! Flags:
//! * `--quick` — CI matrix: 14 workloads × 16 cores, test scale;
//! * `--median-of N` — timing repeats per point (default 3);
//! * `--out PATH` — where to write the BENCH json
//!   (default `BENCH_simthroughput.json`);
//! * `--check PATH` — compare cycles/sec against a baseline BENCH json,
//!   exit 1 when any point regresses by more than the threshold;
//! * `--threshold PCT` — regression tolerance for `--check` (default 25,
//!   `PTB_BENCH_THRESHOLD` overrides) — noise-tolerant, not
//!   machine-portable: baselines are only comparable on similar hosts;
//! * `--write-baseline PATH` — also write the json to PATH (refresh
//!   `tests/bench_baseline.json` after intentional perf changes).
//!
//! `PTB_SCALE` selects the workload scale for the full matrix. Runs are
//! always live and unobserved (`NullObserver`): a cached or observed run
//! would not measure the hot path. With the `alloc-telemetry` feature the
//! json additionally carries allocations and bytes per simulated
//! kilocycle (the quantitative case for arena allocation work).

use ptb_core::{MechanismKind, SimConfig, Simulation};
use ptb_experiments::ObsArgs;
use ptb_farm::hash;
use ptb_metrics::{median, Table};
use ptb_workloads::{Benchmark, Scale};
use serde::{json, Map, Value};
use std::time::Instant;

#[cfg(feature = "alloc-telemetry")]
#[global_allocator]
static ALLOC: ptb_obs::alloc::CountingAlloc = ptb_obs::alloc::CountingAlloc;

/// Format tag of the BENCH json; bump on schema changes so `--check`
/// refuses to compare across formats.
const SCHEMA: &str = "ptb-bench-simthroughput/1";

const FULL_CORES: [usize; 4] = [1, 4, 8, 16];
const QUICK_CORES: [usize; 1] = [16];

struct Opts {
    quick: bool,
    median_of: usize,
    out: String,
    check: Option<String>,
    threshold_pct: f64,
    write_baseline: Option<String>,
}

fn parse_opts(argv: &mut Vec<String>) -> Opts {
    let mut opts = Opts {
        quick: false,
        median_of: 3,
        out: "BENCH_simthroughput.json".into(),
        check: None,
        threshold_pct: std::env::var("PTB_BENCH_THRESHOLD")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(25.0),
        write_baseline: None,
    };
    // Every arm either consumes argv[i] or exits, so the cursor never
    // advances: sim_throughput takes no positional arguments.
    let i = 1;
    while i < argv.len() {
        let (flag, inline) = match argv[i].split_once('=') {
            Some((f, v)) => (f.to_owned(), Some(v.to_owned())),
            None => (argv[i].clone(), None),
        };
        let take_value = |argv: &mut Vec<String>| -> String {
            argv.remove(i);
            inline.clone().unwrap_or_else(|| {
                if i < argv.len() {
                    argv.remove(i)
                } else {
                    eprintln!("error: {flag} requires a value");
                    std::process::exit(2);
                }
            })
        };
        match flag.as_str() {
            "--quick" => {
                argv.remove(i);
                opts.quick = true;
            }
            "--median-of" => {
                let v = take_value(argv);
                opts.median_of = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --median-of {v:?}");
                    std::process::exit(2);
                });
                opts.median_of = opts.median_of.max(1);
            }
            "--out" => opts.out = take_value(argv),
            "--check" => opts.check = Some(take_value(argv)),
            "--threshold" => {
                let v = take_value(argv);
                opts.threshold_pct = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: bad --threshold {v:?}");
                    std::process::exit(2);
                });
            }
            "--write-baseline" => opts.write_baseline = Some(take_value(argv)),
            other => {
                eprintln!("error: unknown argument {other:?}");
                eprintln!(
                    "usage: sim_throughput [--quick] [--median-of N] [--out PATH] \
                     [--check BASELINE] [--threshold PCT] [--write-baseline PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// One measured matrix point.
struct Point {
    bench: Benchmark,
    n_cores: usize,
    cycles: u64,
    committed: u64,
    wall_s: f64,
    #[cfg(feature = "alloc-telemetry")]
    allocs_per_kilocycle: f64,
    #[cfg(feature = "alloc-telemetry")]
    alloc_bytes_per_kilocycle: f64,
}

impl Point {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_s
    }

    fn host_mips(&self) -> f64 {
        self.committed as f64 / self.wall_s / 1e6
    }
}

fn measure(bench: Benchmark, n_cores: usize, scale: Scale, median_of: usize) -> Point {
    let cfg = SimConfig {
        n_cores,
        scale,
        mechanism: MechanismKind::None,
        ..SimConfig::default()
    };
    let sim = Simulation::new(cfg);
    let mut walls = Vec::with_capacity(median_of);
    let mut cycles = 0u64;
    let mut committed = 0u64;
    #[cfg(feature = "alloc-telemetry")]
    let mut alloc_delta = ptb_obs::alloc::AllocSnapshot::default();
    for _ in 0..median_of {
        #[cfg(feature = "alloc-telemetry")]
        let before = ptb_obs::alloc::snapshot();
        let t0 = Instant::now();
        let report = sim.run(bench).unwrap_or_else(|e| {
            eprintln!("error: {}/{n_cores}c failed: {e}", bench.name());
            std::process::exit(1);
        });
        walls.push(t0.elapsed().as_secs_f64().max(1e-9));
        #[cfg(feature = "alloc-telemetry")]
        {
            alloc_delta = ptb_obs::alloc::snapshot().since(&before);
        }
        cycles = report.cycles;
        committed = report.cores.iter().map(|c| c.committed).sum();
    }
    Point {
        bench,
        n_cores,
        cycles,
        committed,
        wall_s: median(&walls),
        #[cfg(feature = "alloc-telemetry")]
        allocs_per_kilocycle: alloc_delta.allocs_per_kilocycle(cycles),
        #[cfg(feature = "alloc-telemetry")]
        alloc_bytes_per_kilocycle: alloc_delta.bytes_per_kilocycle(cycles),
    }
}

/// Current commit hash, best-effort (no git invocation: read
/// `.git/HEAD`, chasing one level of `ref:` indirection).
fn read_commit() -> String {
    let chase = |dir: &std::path::Path| -> Option<String> {
        let head = std::fs::read_to_string(dir.join(".git/HEAD")).ok()?;
        let head = head.trim();
        if let Some(refname) = head.strip_prefix("ref: ") {
            let direct = std::fs::read_to_string(dir.join(".git").join(refname)).ok();
            if let Some(h) = direct {
                return Some(h.trim().to_owned());
            }
            // Packed refs fallback.
            let packed = std::fs::read_to_string(dir.join(".git/packed-refs")).ok()?;
            packed
                .lines()
                .find_map(|l| l.strip_suffix(refname).map(|hash| hash.trim().to_owned()))
        } else {
            Some(head.to_owned())
        }
    };
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if let Some(c) = chase(&dir) {
            return c;
        }
        if !dir.pop() {
            return "unknown".into();
        }
    }
}

/// Digest of everything that determines the measured work: every matrix
/// point's content key (config + fully expanded workload), in order.
fn config_digest(points: &[(Benchmark, usize)], scale: Scale) -> String {
    let mut material = String::new();
    for &(bench, n) in points {
        let cfg = SimConfig {
            n_cores: n,
            scale,
            mechanism: MechanismKind::None,
            ..SimConfig::default()
        };
        material.push_str(&hash::job_key(&cfg, &bench.spec(n, scale)));
        material.push('\n');
    }
    hash::digest_hex(material.as_bytes())
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Large => "large",
    }
}

fn to_json(points: &[Point], opts: &Opts, scale: Scale, digest: &str) -> Value {
    let mut runs = Vec::new();
    for p in points {
        let mut m = Map::new();
        m.insert("bench".into(), Value::Str(p.bench.name().into()));
        m.insert("n_cores".into(), Value::U64(p.n_cores as u64));
        m.insert("cycles".into(), Value::U64(p.cycles));
        m.insert("committed".into(), Value::U64(p.committed));
        m.insert("wall_s".into(), Value::F64(p.wall_s));
        m.insert("cycles_per_sec".into(), Value::F64(p.cycles_per_sec()));
        m.insert("host_mips".into(), Value::F64(p.host_mips()));
        #[cfg(feature = "alloc-telemetry")]
        {
            m.insert(
                "allocs_per_kilocycle".into(),
                Value::F64(p.allocs_per_kilocycle),
            );
            m.insert(
                "alloc_bytes_per_kilocycle".into(),
                Value::F64(p.alloc_bytes_per_kilocycle),
            );
        }
        runs.push(Value::Object(m));
    }
    let total_cycles: u64 = points.iter().map(|p| p.cycles).sum();
    let total_committed: u64 = points.iter().map(|p| p.committed).sum();
    let total_wall: f64 = points.iter().map(|p| p.wall_s).sum();
    let mut totals = Map::new();
    totals.insert("cycles".into(), Value::U64(total_cycles));
    totals.insert("committed".into(), Value::U64(total_committed));
    totals.insert("wall_s".into(), Value::F64(total_wall));
    totals.insert(
        "cycles_per_sec".into(),
        Value::F64(total_cycles as f64 / total_wall.max(1e-9)),
    );
    totals.insert(
        "host_mips".into(),
        Value::F64(total_committed as f64 / total_wall.max(1e-9) / 1e6),
    );

    let mut root = Map::new();
    root.insert("schema".into(), Value::Str(SCHEMA.into()));
    root.insert("commit".into(), Value::Str(read_commit()));
    root.insert("config_digest".into(), Value::Str(digest.into()));
    root.insert("scale".into(), Value::Str(scale_name(scale).into()));
    root.insert("quick".into(), Value::Bool(opts.quick));
    root.insert("median_of".into(), Value::U64(opts.median_of as u64));
    root.insert("runs".into(), Value::Array(runs));
    root.insert("totals".into(), Value::Object(totals));
    Value::Object(root)
}

/// Compare `current` against the baseline json at `path`. Returns the
/// number of regressed points (each named on stderr).
fn check_against(path: &str, current: &Value, threshold_pct: f64) -> usize {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    let base = json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse baseline {path}: {e}");
        std::process::exit(2);
    });
    if base.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        eprintln!("error: baseline {path} has a different schema; regenerate it");
        std::process::exit(2);
    }
    if base.get("scale").and_then(Value::as_str) != current.get("scale").and_then(Value::as_str) {
        eprintln!("error: baseline {path} was measured at a different workload scale");
        std::process::exit(2);
    }
    let runs_of = |v: &Value| -> Vec<(String, u64, f64)> {
        v.get("runs")
            .and_then(Value::as_array)
            .map(|rs| {
                rs.iter()
                    .filter_map(|r| {
                        Some((
                            r.get("bench")?.as_str()?.to_owned(),
                            r.get("n_cores")?.as_u64()?,
                            r.get("cycles_per_sec")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_runs = runs_of(&base);
    let cur_runs = runs_of(current);
    let mut regressions = 0usize;
    for (bench, n, cur_cps) in &cur_runs {
        let Some((_, _, base_cps)) = base_runs.iter().find(|(bb, bn, _)| bb == bench && bn == n)
        else {
            eprintln!("note: {bench}/{n}c not in baseline, skipping");
            continue;
        };
        if *base_cps <= 0.0 {
            continue;
        }
        let delta_pct = 100.0 * (base_cps - cur_cps) / base_cps;
        if delta_pct > threshold_pct {
            eprintln!(
                "REGRESSION: {bench}/{n}c {:.0} -> {:.0} cycles/s ({delta_pct:.1}% slower, \
                 threshold {threshold_pct:.0}%)",
                base_cps, cur_cps
            );
            regressions += 1;
        }
    }
    regressions
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    if obs.enabled() {
        eprintln!(
            "warning: observability flags ignored: sim_throughput measures the unobserved hot path"
        );
    }
    let opts = parse_opts(&mut args);
    let scale = if opts.quick {
        Scale::Test
    } else {
        match std::env::var("PTB_SCALE").ok().as_deref() {
            Some("test") => Scale::Test,
            Some("large") => Scale::Large,
            None | Some("small") => Scale::Small,
            Some(other) => {
                eprintln!("warning: unknown PTB_SCALE {other:?}, using small");
                Scale::Small
            }
        }
    };
    let core_counts: &[usize] = if opts.quick {
        &QUICK_CORES
    } else {
        &FULL_CORES
    };

    let matrix: Vec<(Benchmark, usize)> = Benchmark::ALL
        .iter()
        .flat_map(|&b| core_counts.iter().map(move |&n| (b, n)))
        .collect();
    let digest = config_digest(&matrix, scale);

    eprintln!(
        "sim_throughput: {} points ({} workloads x {:?} cores), {} scale, median of {}",
        matrix.len(),
        Benchmark::ALL.len(),
        core_counts,
        scale_name(scale),
        opts.median_of
    );
    let mut points = Vec::with_capacity(matrix.len());
    for &(bench, n) in &matrix {
        let p = measure(bench, n, scale, opts.median_of);
        eprintln!(
            "  {:>14}/{:<2}c {:>12} cycles {:>8.3}s {:>10.0} cyc/s {:>7.2} MIPS",
            p.bench.name(),
            p.n_cores,
            p.cycles,
            p.wall_s,
            p.cycles_per_sec(),
            p.host_mips()
        );
        points.push(p);
    }

    let mut table = Table::new(
        format!("sim_throughput ({} scale)", scale_name(scale)),
        &[
            "bench",
            "cores",
            "sim-cycles",
            "wall-s",
            "cycles/s",
            "host-MIPS",
        ],
    );
    for p in &points {
        table.row(vec![
            p.bench.name().to_string(),
            p.n_cores.to_string(),
            p.cycles.to_string(),
            format!("{:.3}", p.wall_s),
            format!("{:.0}", p.cycles_per_sec()),
            format!("{:.2}", p.host_mips()),
        ]);
    }
    print!("{}", table.to_text());

    let doc = to_json(&points, &opts, scale, &digest);
    let text = json::to_string_pretty(&doc);
    if let Err(e) = std::fs::write(&opts.out, &text) {
        eprintln!("error: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    println!("[bench: {} runs -> {}]", points.len(), opts.out);
    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: cannot write baseline {path}: {e}");
            std::process::exit(1);
        }
        println!("[baseline -> {path}]");
    }

    let total_wall: f64 = points.iter().map(|p| p.wall_s).sum();
    let total_cycles: u64 = points.iter().map(|p| p.cycles).sum();
    let total_committed: u64 = points.iter().map(|p| p.committed).sum();
    println!(
        "SIM_THROUGHPUT: {:.2} Mcycles/s, {:.2} host-MIPS ({:.2}s wall, {} runs)",
        total_cycles as f64 / total_wall.max(1e-9) / 1e6,
        total_committed as f64 / total_wall.max(1e-9) / 1e6,
        total_wall,
        points.len()
    );

    if let Some(baseline) = &opts.check {
        let regressions = check_against(baseline, &doc, opts.threshold_pct);
        if regressions > 0 {
            eprintln!("bench gate FAILED: {regressions} regressed points");
            std::process::exit(1);
        }
        println!(
            "bench gate passed: no point slower than baseline by more than {:.0}%",
            opts.threshold_pct
        );
    }
}
