//! Workload inspector: print the structure and dynamic statistics of one
//! benchmark model at a given thread count — the at-a-glance view of what
//! each Table 2 substitute actually executes. Args:
//! `inspect_workload [benchmark] [threads]`.

use ptb_experiments::{emit, ObsArgs, Runner};
use ptb_metrics::Table;
use ptb_workloads::{Benchmark, FlatStmt};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let obs = ObsArgs::parse(&mut args);
    if obs.enabled() {
        eprintln!("warning: observability flags ignored: inspect_workload does not simulate");
    }
    let runner = Runner::from_env_args(&mut args);
    let benches: Vec<Benchmark> = match args.get(1).map(|s| s.as_str()) {
        Some(name) => vec![Benchmark::from_name(name).expect("unknown benchmark")],
        None => Benchmark::ALL.to_vec(),
    };
    let threads = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    let mut table = Table::new(
        format!(
            "Workload inventory ({threads} threads, scale {:?})",
            runner.scale
        ),
        &[
            "bench",
            "lock-kind",
            "compute/thr",
            "locks/thr",
            "barriers/thr",
            "distinct-locks",
            "footprint-KiB",
        ],
    );
    for bench in benches {
        let spec = bench.spec(threads, runner.scale);
        let prog = &spec.programs[0];
        let locks = prog
            .iter()
            .filter(|s| matches!(s, FlatStmt::Lock(_)))
            .count();
        let barriers = prog
            .iter()
            .filter(|s| matches!(s, FlatStmt::Barrier(_)))
            .count();
        let distinct: std::collections::HashSet<_> = prog
            .iter()
            .filter_map(|s| match s {
                FlatStmt::Lock(l) => Some(*l),
                _ => None,
            })
            .collect();
        let footprint = spec
            .profiles
            .iter()
            .map(|p| p.mem.shared_footprint)
            .max()
            .unwrap_or(0);
        table.row(vec![
            bench.name().to_string(),
            format!("{:?}", spec.lock_kind),
            (spec.total_compute() / threads as u64).to_string(),
            locks.to_string(),
            barriers.to_string(),
            distinct.len().to_string(),
            (footprint >> 10).to_string(),
        ]);
    }
    emit(&runner, "workload_inventory", &table);
}
