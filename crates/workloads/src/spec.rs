//! Workload specifications: per-thread programs plus compute profiles.

use crate::engine::ThreadEngine;
use crate::stmt::{self, FlatStmt};
use ptb_isa::BlockGenConfig;
use serde::{Deserialize, Serialize};

/// Which spinlock implementation `Lock`/`Unlock` statements use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LockKind {
    /// Test-and-test-and-set (default; SPLASH-2's common case).
    #[default]
    TestAndSet,
    /// FIFO ticket lock (fair; used by task-queue style programs).
    Ticket,
}

/// Input-set scale, analogous to the paper's Table 2 working sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny runs for unit/integration tests (thousands of instructions).
    Test,
    /// Default experiment scale (hundreds of thousands of instructions).
    Small,
    /// Longer runs for detailed traces.
    Large,
}

impl Scale {
    /// Multiplier applied to compute-block instruction counts.
    pub fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 4,
            Scale::Large => 16,
        }
    }
}

/// A complete workload: one flattened program per thread plus the compute
/// profiles they reference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Benchmark name (Table 2 spelling).
    pub name: String,
    /// One program per thread.
    pub programs: Vec<Vec<FlatStmt>>,
    /// Compute-block profiles referenced by the programs.
    pub profiles: Vec<BlockGenConfig>,
    /// Base RNG seed (per-thread engines derive from it).
    pub seed: u64,
    /// Spinlock implementation for this workload.
    #[serde(default)]
    pub lock_kind: LockKind,
}

impl WorkloadSpec {
    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.programs.len()
    }

    /// Validate every thread's program; returns all problems found.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (tid, prog) in self.programs.iter().enumerate() {
            for p in stmt::validate(prog) {
                problems.push(format!("thread {tid}: {p}"));
            }
            for s in prog {
                if let FlatStmt::Compute { profile, .. } = s {
                    if *profile >= self.profiles.len() {
                        problems.push(format!("thread {tid}: profile {profile} out of range"));
                    }
                }
            }
        }
        problems
    }

    /// Total dynamic compute instructions across all threads.
    pub fn total_compute(&self) -> u64 {
        self.programs
            .iter()
            .map(|p| stmt::compute_instructions(p))
            .sum()
    }

    /// Build one instruction-stream engine per thread.
    pub fn engines(&self) -> Vec<ThreadEngine> {
        (0..self.n_threads())
            .map(|tid| ThreadEngine::new(self, tid))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::Stmt;
    use ptb_isa::LockId;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny".into(),
            programs: vec![stmt::flatten(&[
                Stmt::Compute {
                    profile: 0,
                    count: 10,
                },
                Stmt::Lock(LockId(0)),
                Stmt::Compute {
                    profile: 0,
                    count: 2,
                },
                Stmt::Unlock(LockId(0)),
            ])],
            profiles: vec![BlockGenConfig::default()],
            seed: 7,
            lock_kind: LockKind::default(),
        }
    }

    #[test]
    fn valid_spec_passes() {
        assert!(tiny_spec().validate().is_empty());
    }

    #[test]
    fn out_of_range_profile_is_caught() {
        let mut s = tiny_spec();
        s.programs[0].push(FlatStmt::Compute {
            profile: 5,
            count: 1,
        });
        assert!(!s.validate().is_empty());
    }

    #[test]
    fn totals_and_engines() {
        let s = tiny_spec();
        assert_eq!(s.total_compute(), 12);
        assert_eq!(s.engines().len(), 1);
        assert_eq!(s.n_threads(), 1);
    }

    #[test]
    fn scale_factors_are_ordered() {
        assert!(Scale::Test.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Large.factor());
    }
}
