//! # ptb-workloads — synthetic SPLASH-2 / PARSEC workload models
//!
//! The paper evaluates on SPLASH-2 (barnes, cholesky, fft, ocean, radix,
//! raytrace, tomcatv, unstructured, water-nsq, water-sp) plus PARSEC
//! (blackscholes, fluidanimate, swaptions, x264) under Simics. Booting real
//! binaries is out of reach for a from-scratch Rust rebuild, so each
//! benchmark is modelled as a *parameterised parallel program* in a small
//! statement IR ([`Stmt`]): phases of synthetic computation (instruction
//! mix, memory pattern, per-thread imbalance) interleaved with real
//! lock/unlock/barrier synchronisation executed through the simulated
//! coherent memory system.
//!
//! Model parameters are chosen to reproduce each benchmark's *published*
//! behaviour — most importantly the paper's Figure 3 execution-time
//! breakdown (which applications are lock-bound vs. barrier-bound vs.
//! contention-free, and how spinning grows with core count):
//!
//! * `unstructured`, `fluidanimate` — heavy lock contention;
//! * `waternsq`, `raytrace` — moderate lock time, imbalanced threads;
//! * `barnes`, `fft`, `ocean`, `radix`, `tomcatv` — barrier-dominated
//!   phase programs with varying imbalance;
//! * `cholesky`, `blackscholes`, `swaptions`, `x264` — little or no
//!   contention (synchronise only at the end or are well balanced).
//!
//! Every engine is seeded and fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod engine;
pub mod spec;
pub mod stmt;

pub use bench::Benchmark;
pub use engine::ThreadEngine;
pub use spec::{LockKind, Scale, WorkloadSpec};
pub use stmt::{FlatStmt, Stmt};
