//! The fourteen benchmark models (paper Table 2).
//!
//! Each model is a parameter set — phase count, per-phase work,
//! thread imbalance, lock behaviour, instruction mix, memory pattern —
//! that generates per-thread programs in the statement IR. Parameters are
//! chosen to reproduce the *published* qualitative behaviour of each
//! benchmark (execution-time breakdown of the paper's Figure 3, memory
//! intensity, contention class); see `DESIGN.md` for the substitution
//! rationale.

use crate::spec::{LockKind, Scale, WorkloadSpec};
use crate::stmt::{flatten, Stmt};
use ptb_isa::{BarrierId, BlockGenConfig, InstMix, LockId, MemPattern};
use serde::{Deserialize, Serialize};

/// The evaluated benchmarks (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Barnes,
    Cholesky,
    Fft,
    Ocean,
    Radix,
    Raytrace,
    Tomcatv,
    Unstructured,
    Waternsq,
    Watersp,
    Blackscholes,
    Fluidanimate,
    Swaptions,
    X264,
}

impl Benchmark {
    /// All benchmarks, in the paper's figure order.
    pub const ALL: [Benchmark; 14] = [
        Benchmark::Barnes,
        Benchmark::Cholesky,
        Benchmark::Fft,
        Benchmark::Ocean,
        Benchmark::Radix,
        Benchmark::Raytrace,
        Benchmark::Tomcatv,
        Benchmark::Unstructured,
        Benchmark::Waternsq,
        Benchmark::Watersp,
        Benchmark::Blackscholes,
        Benchmark::Fluidanimate,
        Benchmark::Swaptions,
        Benchmark::X264,
    ];

    /// Display name (Table 2 spelling).
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Barnes => "barnes",
            Benchmark::Cholesky => "cholesky",
            Benchmark::Fft => "fft",
            Benchmark::Ocean => "ocean",
            Benchmark::Radix => "radix",
            Benchmark::Raytrace => "raytrace",
            Benchmark::Tomcatv => "tomcatv",
            Benchmark::Unstructured => "unstructured",
            Benchmark::Waternsq => "waternsq",
            Benchmark::Watersp => "watersp",
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Swaptions => "swaptions",
            Benchmark::X264 => "x264",
        }
    }

    /// Parse a Table 2 name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.name() == name)
    }

    /// Build the workload for `n_threads` threads at `scale`.
    pub fn spec(self, n_threads: usize, scale: Scale) -> WorkloadSpec {
        let p = self.params();
        p.build(self, n_threads, scale)
    }

    fn params(self) -> Params {
        use Benchmark::*;
        match self {
            // SPLASH-2 --------------------------------------------------
            Barnes => Params {
                phases: 8,
                work: 3000,
                imbalance: 0.25,
                locks_per_phase: 2,
                cs_len: 40,
                n_locks: 16,
                sync: SyncStyle::BarrierPerPhase,
                mix: InstMix::fp_heavy(),
                mem: MemPattern {
                    shared_footprint: 256 << 10,
                    shared_frac: 0.45,
                    locality: 0.6,
                    stride: 24,
                    shared_offset: 0,
                    cross_frac: 0.08,
                },
                flaky: 0.12,
                dep_density: 0.55,
            },
            Cholesky => Params {
                phases: 6,
                work: 4000,
                imbalance: 0.08,
                locks_per_phase: 3,
                cs_len: 25,
                n_locks: 32,
                sync: SyncStyle::FinalBarrierOnly,
                mix: InstMix::fp_heavy(),
                mem: MemPattern {
                    shared_footprint: 512 << 10,
                    shared_frac: 0.5,
                    locality: 0.7,
                    stride: 16,
                    shared_offset: 0,
                    cross_frac: 0.05,
                },
                flaky: 0.10,
                dep_density: 0.60,
            },
            Fft => Params {
                phases: 6,
                work: 3500,
                imbalance: 0.10,
                locks_per_phase: 0,
                cs_len: 0,
                n_locks: 1,
                sync: SyncStyle::BarrierPerPhase,
                mix: InstMix::mem_heavy(),
                mem: MemPattern {
                    shared_footprint: 2 << 20,
                    shared_frac: 0.7,
                    locality: 0.25,
                    stride: 64,
                    shared_offset: 0,
                    cross_frac: 0.10,
                },
                flaky: 0.06,
                dep_density: 0.55,
            },
            Ocean => Params {
                phases: 10,
                work: 2500,
                imbalance: 0.30,
                locks_per_phase: 0,
                cs_len: 0,
                n_locks: 1,
                sync: SyncStyle::BarrierPerPhase,
                mix: InstMix::mem_heavy(),
                mem: MemPattern {
                    shared_footprint: 4 << 20,
                    shared_frac: 0.75,
                    locality: 0.2,
                    stride: 64,
                    shared_offset: 0,
                    cross_frac: 0.06,
                },
                flaky: 0.08,
                dep_density: 0.55,
            },
            Radix => Params {
                phases: 5,
                work: 3000,
                imbalance: 0.45,
                locks_per_phase: 0,
                cs_len: 0,
                n_locks: 1,
                sync: SyncStyle::BarrierPerPhase,
                mix: InstMix::int_heavy(),
                mem: MemPattern {
                    shared_footprint: 2 << 20,
                    shared_frac: 0.65,
                    locality: 0.15,
                    stride: 64,
                    shared_offset: 0,
                    cross_frac: 0.12,
                },
                flaky: 0.05,
                dep_density: 0.55,
            },
            Raytrace => Params {
                phases: 6,
                work: 3000,
                imbalance: 0.40,
                locks_per_phase: 4,
                cs_len: 45,
                n_locks: 4,
                sync: SyncStyle::FinalBarrierOnly,
                mix: InstMix::fp_heavy(),
                mem: MemPattern {
                    shared_footprint: 1 << 20,
                    shared_frac: 0.5,
                    locality: 0.5,
                    stride: 32,
                    shared_offset: 0,
                    cross_frac: 0.06,
                },
                flaky: 0.18,
                dep_density: 0.55,
            },
            Tomcatv => Params {
                phases: 8,
                work: 3000,
                imbalance: 0.15,
                locks_per_phase: 0,
                cs_len: 0,
                n_locks: 1,
                sync: SyncStyle::BarrierPerPhase,
                mix: InstMix::fp_heavy(),
                mem: MemPattern {
                    shared_footprint: 1 << 20,
                    shared_frac: 0.55,
                    locality: 0.45,
                    stride: 32,
                    shared_offset: 0,
                    cross_frac: 0.05,
                },
                flaky: 0.05,
                dep_density: 0.60,
            },
            Unstructured => Params {
                phases: 8,
                work: 2000,
                imbalance: 0.30,
                locks_per_phase: 8,
                cs_len: 70,
                n_locks: 2,
                sync: SyncStyle::BarrierPerPhase,
                mix: InstMix::fp_heavy(),
                mem: MemPattern {
                    shared_footprint: 512 << 10,
                    shared_frac: 0.55,
                    locality: 0.4,
                    stride: 40,
                    shared_offset: 0,
                    cross_frac: 0.15,
                },
                flaky: 0.15,
                dep_density: 0.55,
            },
            Waternsq => Params {
                phases: 6,
                work: 2500,
                imbalance: 0.25,
                locks_per_phase: 6,
                cs_len: 45,
                n_locks: 4,
                sync: SyncStyle::BarrierPerPhase,
                mix: InstMix::fp_heavy(),
                mem: MemPattern {
                    shared_footprint: 256 << 10,
                    shared_frac: 0.45,
                    locality: 0.6,
                    stride: 24,
                    shared_offset: 0,
                    cross_frac: 0.10,
                },
                flaky: 0.10,
                dep_density: 0.55,
            },
            Watersp => Params {
                phases: 6,
                work: 3000,
                imbalance: 0.15,
                locks_per_phase: 2,
                cs_len: 30,
                n_locks: 8,
                sync: SyncStyle::BarrierPerPhase,
                mix: InstMix::fp_heavy(),
                mem: MemPattern {
                    shared_footprint: 256 << 10,
                    shared_frac: 0.4,
                    locality: 0.65,
                    stride: 24,
                    shared_offset: 0,
                    cross_frac: 0.06,
                },
                flaky: 0.08,
                dep_density: 0.60,
            },
            // PARSEC ----------------------------------------------------
            Blackscholes => Params {
                phases: 4,
                work: 5000,
                imbalance: 0.05,
                locks_per_phase: 0,
                cs_len: 0,
                n_locks: 1,
                sync: SyncStyle::FinalBarrierOnly,
                // Option pricing is FP code with long dependence chains
                // (serial Black-Scholes formula per option): moderate IPC.
                mix: InstMix {
                    fp_mul: 0.12,
                    load: 0.26,
                    ..InstMix::fp_heavy()
                },
                mem: MemPattern {
                    shared_footprint: 128 << 10,
                    shared_frac: 0.3,
                    locality: 0.8,
                    stride: 16,
                    shared_offset: 0,
                    cross_frac: 0.02,
                },
                flaky: 0.03,
                dep_density: 0.72,
            },
            Fluidanimate => Params {
                phases: 6,
                work: 2200,
                imbalance: 0.25,
                locks_per_phase: 10,
                cs_len: 22,
                n_locks: 8,
                sync: SyncStyle::BarrierPerPhase,
                mix: InstMix::fp_heavy(),
                mem: MemPattern {
                    shared_footprint: 1 << 20,
                    shared_frac: 0.55,
                    locality: 0.45,
                    stride: 32,
                    shared_offset: 0,
                    cross_frac: 0.12,
                },
                flaky: 0.12,
                dep_density: 0.55,
            },
            Swaptions => Params {
                phases: 4,
                work: 5000,
                imbalance: 0.08,
                locks_per_phase: 0,
                cs_len: 0,
                n_locks: 1,
                sync: SyncStyle::FinalBarrierOnly,
                // HJM simulation: FP chains over per-path state, moderate
                // IPC.
                mix: InstMix {
                    fp_mul: 0.12,
                    load: 0.26,
                    ..InstMix::fp_heavy()
                },
                mem: MemPattern {
                    shared_footprint: 96 << 10,
                    shared_frac: 0.25,
                    locality: 0.85,
                    stride: 16,
                    shared_offset: 0,
                    cross_frac: 0.02,
                },
                flaky: 0.04,
                dep_density: 0.72,
            },
            X264 => Params {
                phases: 5,
                work: 4000,
                imbalance: 0.12,
                locks_per_phase: 2,
                cs_len: 18,
                n_locks: 16,
                sync: SyncStyle::FinalBarrierOnly,
                mix: InstMix::int_heavy(),
                mem: MemPattern {
                    shared_footprint: 768 << 10,
                    shared_frac: 0.5,
                    locality: 0.55,
                    stride: 32,
                    shared_offset: 0,
                    cross_frac: 0.05,
                },
                flaky: 0.14,
                dep_density: 0.62,
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SyncStyle {
    /// Barrier at the end of every phase (data-parallel phase programs).
    BarrierPerPhase,
    /// Threads only synchronise once, at the end (task-parallel programs).
    FinalBarrierOnly,
}

#[derive(Debug, Clone, Copy)]
struct Params {
    phases: u32,
    /// Base compute instructions per thread per phase (pre-scale).
    work: u64,
    /// Max fractional per-thread work deviation; the "critical thread"
    /// rotates between phases.
    imbalance: f64,
    locks_per_phase: u32,
    cs_len: u64,
    n_locks: usize,
    sync: SyncStyle,
    mix: InstMix,
    mem: MemPattern,
    flaky: f64,
    /// Dependence density of the main compute profile (higher = less ILP,
    /// cooler core). Calibrates each benchmark's sustained power.
    dep_density: f64,
}

/// Deterministic per-(thread, phase) work deviation in [−1, 1]; rotates
/// which thread is slowest so the critical thread changes over time, as
/// the paper observes.
fn deviation(bench: Benchmark, tid: usize, phase: u32) -> f64 {
    let mut h = (tid as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= u64::from(phase + 1).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    h ^= (bench as u64 + 1).wrapping_mul(0x1656_67b1_9e37_79f9);
    h ^= h >> 29;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 32;
    (h % 2001) as f64 / 1000.0 - 1.0
}

impl Params {
    fn build(&self, bench: Benchmark, n_threads: usize, scale: Scale) -> WorkloadSpec {
        assert!(n_threads >= 1);
        let factor = scale.factor();
        // Profile 0: main compute; profile 1: critical-section bodies
        // (small, contended shared footprint — the protected data).
        let profiles = vec![
            BlockGenConfig {
                mix: self.mix,
                mem: self.mem,
                static_len: 128,
                flaky_branch_frac: self.flaky,
                dep_density: self.dep_density,
            },
            BlockGenConfig {
                mix: InstMix::balanced(),
                mem: MemPattern {
                    shared_footprint: 4 << 10,
                    shared_offset: 16 << 20, // disjoint from the main window
                    shared_frac: 0.8,
                    locality: 0.5,
                    stride: 16,
                    // The protected data is genuinely shared: any access
                    // may touch any line (migratory pattern).
                    cross_frac: 1.0,
                },
                static_len: 32,
                flaky_branch_frac: 0.05,
                dep_density: 0.6,
            },
        ];
        let programs = (0..n_threads)
            .map(|tid| {
                let mut prog = Vec::new();
                for phase in 0..self.phases {
                    let dev = deviation(bench, tid, phase);
                    let work = (self.work as f64 * factor as f64 * (1.0 + self.imbalance * dev))
                        .max(32.0) as u64;
                    prog.push(Stmt::Compute {
                        profile: 0,
                        count: work,
                    });
                    for k in 0..self.locks_per_phase {
                        let lock = (phase.wrapping_mul(7).wrapping_add(k.wrapping_mul(3))) as usize
                            % self.n_locks;
                        prog.push(Stmt::Lock(LockId(lock)));
                        prog.push(Stmt::Compute {
                            profile: 1,
                            count: self.cs_len.max(4) * factor.min(4),
                        });
                        prog.push(Stmt::Unlock(LockId(lock)));
                    }
                    if self.sync == SyncStyle::BarrierPerPhase {
                        prog.push(Stmt::Barrier(BarrierId(phase as usize % 4)));
                    }
                }
                if self.sync == SyncStyle::FinalBarrierOnly {
                    prog.push(Stmt::Barrier(BarrierId(7)));
                }
                flatten(&prog)
            })
            .collect();
        WorkloadSpec {
            name: bench.name().to_string(),
            programs,
            profiles,
            seed: 0x5eed_0000 + bench as u64,
            // Task-queue style programs use a fair FIFO (ticket) lock on
            // the queue; everything else uses SPLASH-2's TTAS locks.
            lock_kind: match bench {
                Benchmark::Raytrace => LockKind::Ticket,
                _ => LockKind::TestAndSet,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fourteen_benchmarks_build_valid_specs() {
        for bench in Benchmark::ALL {
            for n in [2, 4, 8, 16] {
                let spec = bench.spec(n, Scale::Test);
                assert_eq!(spec.n_threads(), n);
                let problems = spec.validate();
                assert!(problems.is_empty(), "{bench}: {problems:?}");
                assert!(spec.total_compute() > 0);
            }
        }
    }

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nosuch"), None);
    }

    #[test]
    fn contention_classes_match_the_paper() {
        // Lock-heavy benchmarks carry many Lock statements; contention-free
        // ones carry none.
        let count_locks = |b: Benchmark| -> usize {
            b.spec(4, Scale::Test).programs[0]
                .iter()
                .filter(|s| matches!(s, crate::stmt::FlatStmt::Lock(_)))
                .count()
        };
        assert!(count_locks(Benchmark::Unstructured) >= 32);
        assert!(count_locks(Benchmark::Fluidanimate) >= 32);
        assert_eq!(count_locks(Benchmark::Fft), 0);
        assert_eq!(count_locks(Benchmark::Ocean), 0);
        assert_eq!(count_locks(Benchmark::Radix), 0);
        assert_eq!(count_locks(Benchmark::Blackscholes), 0);
        assert_eq!(count_locks(Benchmark::Swaptions), 0);
    }

    #[test]
    fn barrier_styles_match_the_paper() {
        let count_barriers = |b: Benchmark| -> usize {
            b.spec(4, Scale::Test).programs[0]
                .iter()
                .filter(|s| matches!(s, crate::stmt::FlatStmt::Barrier(_)))
                .count()
        };
        // Phase programs barrier every phase; task programs only at the end.
        assert!(count_barriers(Benchmark::Ocean) >= 10);
        assert_eq!(count_barriers(Benchmark::Blackscholes), 1);
        assert_eq!(count_barriers(Benchmark::Swaptions), 1);
        assert_eq!(count_barriers(Benchmark::Cholesky), 1);
    }

    #[test]
    fn imbalance_rotates_critical_thread() {
        // For a high-imbalance benchmark, the slowest thread should not be
        // the same in every phase.
        let spec = Benchmark::Radix.spec(8, Scale::Test);
        let mut slowest_per_phase = Vec::new();
        // Phase k's compute statement is the k-th Compute in each program
        // (radix has no locks).
        for phase in 0..5 {
            let mut worst = (0usize, 0u64);
            for (tid, prog) in spec.programs.iter().enumerate() {
                let computes: Vec<u64> = prog
                    .iter()
                    .filter_map(|s| match s {
                        crate::stmt::FlatStmt::Compute { count, .. } => Some(*count),
                        _ => None,
                    })
                    .collect();
                if computes[phase] > worst.1 {
                    worst = (tid, computes[phase]);
                }
            }
            slowest_per_phase.push(worst.0);
        }
        let unique: std::collections::HashSet<_> = slowest_per_phase.iter().collect();
        assert!(
            unique.len() > 1,
            "critical thread never rotates: {slowest_per_phase:?}"
        );
    }

    #[test]
    fn scale_increases_work() {
        let small = Benchmark::Fft.spec(4, Scale::Test).total_compute();
        let big = Benchmark::Fft.spec(4, Scale::Small).total_compute();
        assert!(big > small * 3);
        let huge = Benchmark::Fft.spec(4, Scale::Large).total_compute();
        assert!(huge > big * 3);
    }

    #[test]
    fn deviation_is_deterministic_and_bounded() {
        for b in [Benchmark::Barnes, Benchmark::X264] {
            for tid in 0..16 {
                for phase in 0..10 {
                    let d = deviation(b, tid, phase);
                    assert!((-1.0..=1.0).contains(&d));
                    assert_eq!(d, deviation(b, tid, phase));
                }
            }
        }
    }
}
