//! The workload statement IR.

use ptb_isa::{BarrierId, LockId};
use serde::{Deserialize, Serialize};

/// A structured workload statement (builder-facing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Execute `count` instructions from compute profile `profile`.
    Compute {
        /// Index into the workload's profile table.
        profile: usize,
        /// Dynamic instruction count.
        count: u64,
    },
    /// Acquire a spinlock (spins until owned).
    Lock(LockId),
    /// Release a held spinlock.
    Unlock(LockId),
    /// Wait at a barrier with all the workload's threads.
    Barrier(BarrierId),
    /// Repeat `body` `times` times.
    Repeat {
        /// Iteration count.
        times: u32,
        /// Statements to repeat.
        body: Vec<Stmt>,
    },
}

/// A flattened (loop-expanded) statement, as executed by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlatStmt {
    /// Execute `count` instructions from profile `profile`.
    Compute {
        /// Profile index.
        profile: usize,
        /// Instruction count.
        count: u64,
    },
    /// Acquire a lock.
    Lock(LockId),
    /// Release a lock.
    Unlock(LockId),
    /// Barrier wait.
    Barrier(BarrierId),
}

/// Flatten a structured program, expanding `Repeat` bodies.
pub fn flatten(stmts: &[Stmt]) -> Vec<FlatStmt> {
    let mut out = Vec::new();
    flatten_into(stmts, &mut out);
    out
}

fn flatten_into(stmts: &[Stmt], out: &mut Vec<FlatStmt>) {
    for s in stmts {
        match s {
            Stmt::Compute { profile, count } => out.push(FlatStmt::Compute {
                profile: *profile,
                count: *count,
            }),
            Stmt::Lock(l) => out.push(FlatStmt::Lock(*l)),
            Stmt::Unlock(l) => out.push(FlatStmt::Unlock(*l)),
            Stmt::Barrier(b) => out.push(FlatStmt::Barrier(*b)),
            Stmt::Repeat { times, body } => {
                for _ in 0..*times {
                    flatten_into(body, out);
                }
            }
        }
    }
}

/// Static sanity checks on a flattened program: lock/unlock pairing and
/// no nested acquisition of the same lock. Returns the list of problems.
pub fn validate(flat: &[FlatStmt]) -> Vec<String> {
    let mut problems = Vec::new();
    let mut held: Vec<LockId> = Vec::new();
    for (i, s) in flat.iter().enumerate() {
        match s {
            FlatStmt::Lock(l) => {
                if held.contains(l) {
                    problems.push(format!("stmt {i}: lock {l} acquired while held"));
                }
                held.push(*l);
            }
            FlatStmt::Unlock(l) => {
                if let Some(pos) = held.iter().position(|h| h == l) {
                    held.remove(pos);
                } else {
                    problems.push(format!("stmt {i}: unlock of unheld lock {l}"));
                }
            }
            FlatStmt::Barrier(_) => {
                if !held.is_empty() {
                    problems.push(format!("stmt {i}: barrier while holding {held:?}"));
                }
            }
            FlatStmt::Compute { count, .. } => {
                if *count == 0 {
                    problems.push(format!("stmt {i}: empty compute block"));
                }
            }
        }
    }
    if !held.is_empty() {
        problems.push(format!("program ends holding {held:?}"));
    }
    problems
}

/// Total dynamic compute instructions in a flattened program.
pub fn compute_instructions(flat: &[FlatStmt]) -> u64 {
    flat.iter()
        .map(|s| match s {
            FlatStmt::Compute { count, .. } => *count,
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_expands_nested_repeats() {
        let prog = vec![Stmt::Repeat {
            times: 2,
            body: vec![
                Stmt::Compute {
                    profile: 0,
                    count: 10,
                },
                Stmt::Repeat {
                    times: 3,
                    body: vec![Stmt::Barrier(BarrierId(0))],
                },
            ],
        }];
        let flat = flatten(&prog);
        assert_eq!(flat.len(), 2 * (1 + 3));
        assert_eq!(compute_instructions(&flat), 20);
    }

    #[test]
    fn validate_accepts_well_formed_program() {
        let flat = flatten(&[
            Stmt::Compute {
                profile: 0,
                count: 5,
            },
            Stmt::Lock(LockId(1)),
            Stmt::Compute {
                profile: 1,
                count: 3,
            },
            Stmt::Unlock(LockId(1)),
            Stmt::Barrier(BarrierId(0)),
        ]);
        assert!(validate(&flat).is_empty());
    }

    #[test]
    fn validate_catches_unlock_without_lock() {
        let flat = flatten(&[Stmt::Unlock(LockId(0))]);
        assert_eq!(validate(&flat).len(), 1);
    }

    #[test]
    fn validate_catches_double_lock_and_leak() {
        let flat = flatten(&[Stmt::Lock(LockId(0)), Stmt::Lock(LockId(0))]);
        let probs = validate(&flat);
        assert!(probs.iter().any(|p| p.contains("while held")));
        assert!(probs.iter().any(|p| p.contains("ends holding")));
    }

    #[test]
    fn validate_catches_barrier_under_lock() {
        let flat = flatten(&[
            Stmt::Lock(LockId(0)),
            Stmt::Barrier(BarrierId(0)),
            Stmt::Unlock(LockId(0)),
        ]);
        assert!(validate(&flat)
            .iter()
            .any(|p| p.contains("barrier while holding")));
    }

    #[test]
    fn validate_catches_empty_compute() {
        let flat = flatten(&[Stmt::Compute {
            profile: 0,
            count: 0,
        }]);
        assert_eq!(validate(&flat).len(), 1);
    }
}
