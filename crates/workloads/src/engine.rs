//! The thread engine: interprets a flattened program as an
//! [`InstStream`] for one core.

use crate::spec::{LockKind, WorkloadSpec};
use crate::stmt::FlatStmt;
use ptb_isa::addr::layout;
use ptb_isa::{BarrierId, BlockGen, ExecCtx, Fetch, InstStream, RmwToken, StreamEnv};
use ptb_sync::{BarrierWait, LockAcquire, LockRelease, SyncStep, TicketAcquire, TicketRelease};

/// PC-space conventions for static code regions: compute profiles first,
/// then one small site per lock and per barrier, so predictor/PTHT entries
/// are stable per site.
mod pcs {
    /// Base of compute-profile code.
    pub const PROFILE_BASE: u64 = 0x0001_0000;
    /// Bytes reserved per profile body.
    pub const PROFILE_STRIDE: u64 = 0x4000;
    /// Base of lock-site code.
    pub const LOCK_BASE: u64 = 0x0040_0000;
    /// Base of barrier-site code.
    pub const BARRIER_BASE: u64 = 0x0050_0000;

    pub fn profile(p: usize) -> u64 {
        PROFILE_BASE + p as u64 * PROFILE_STRIDE
    }
    pub fn lock(l: usize) -> u64 {
        LOCK_BASE + l as u64 * 0x100
    }
    pub fn barrier(b: usize) -> u64 {
        BARRIER_BASE + b as u64 * 0x100
    }
}

enum Current {
    Idle,
    Compute { profile: usize, remaining: u64 },
    Lock(LockAcquire),
    Unlock(LockRelease),
    TicketLock(TicketAcquire),
    TicketUnlock(TicketRelease),
    Barrier(BarrierWait),
}

/// Per-engine execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Locks acquired.
    pub locks_acquired: u64,
    /// Barriers passed.
    pub barriers_passed: u64,
    /// Instructions emitted.
    pub insts_emitted: u64,
}

/// One software thread's instruction stream.
pub struct ThreadEngine {
    tid: usize,
    n_threads: u64,
    program: Vec<FlatStmt>,
    pos: usize,
    current: Current,
    gens: Vec<BlockGen>,
    token: RmwToken,
    lock_kind: LockKind,
    /// Execution statistics.
    pub stats: EngineStats,
}

impl ThreadEngine {
    /// Build thread `tid`'s engine from a workload spec.
    pub fn new(spec: &WorkloadSpec, tid: usize) -> Self {
        assert!(tid < spec.n_threads());
        let gens = spec
            .profiles
            .iter()
            .enumerate()
            .map(|(p, cfg)| {
                BlockGen::with_threads(
                    *cfg,
                    tid,
                    spec.n_threads(),
                    pcs::profile(p),
                    spec.seed ^ (tid as u64).wrapping_mul(0x9e37_79b9) ^ (p as u64) << 32,
                )
            })
            .collect();
        ThreadEngine {
            tid,
            n_threads: spec.n_threads() as u64,
            program: spec.programs[tid].clone(),
            pos: 0,
            current: Current::Idle,
            gens,
            token: RmwToken(tid as u64),
            lock_kind: spec.lock_kind,
            stats: EngineStats::default(),
        }
    }

    /// The thread id this engine feeds.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Has the program fully executed?
    pub fn finished(&self) -> bool {
        self.pos >= self.program.len() && matches!(self.current, Current::Idle)
    }

    fn start(&mut self, stmt: FlatStmt) {
        self.current = match stmt {
            FlatStmt::Compute { profile, count } => Current::Compute {
                profile,
                remaining: count,
            },
            FlatStmt::Lock(l) => match self.lock_kind {
                LockKind::TestAndSet => Current::Lock(LockAcquire::new(
                    l,
                    layout::lock_addr(l.index()),
                    self.tid as u64 + 1,
                    pcs::lock(l.index()),
                    self.token,
                )),
                LockKind::Ticket => Current::TicketLock(TicketAcquire::new(
                    l,
                    layout::lock_addr(l.index()),
                    pcs::lock(l.index()),
                    self.token,
                )),
            },
            FlatStmt::Unlock(l) => match self.lock_kind {
                LockKind::TestAndSet => Current::Unlock(LockRelease::new(
                    l,
                    layout::lock_addr(l.index()),
                    pcs::lock(l.index()),
                    self.token,
                )),
                LockKind::Ticket => Current::TicketUnlock(TicketRelease::new(
                    l,
                    layout::lock_addr(l.index()),
                    pcs::lock(l.index()),
                    self.token,
                )),
            },
            FlatStmt::Barrier(b) => Current::Barrier(barrier_wait(b, self.n_threads, self.token)),
        };
    }
}

fn barrier_wait(b: BarrierId, n_threads: u64, token: RmwToken) -> BarrierWait {
    BarrierWait::new(
        b,
        layout::barrier_counter_addr(b.index()),
        layout::barrier_sense_addr(b.index()),
        n_threads,
        pcs::barrier(b.index()),
        token,
    )
}

impl InstStream for ThreadEngine {
    fn next(&mut self, env: &mut dyn StreamEnv) -> Fetch {
        loop {
            match &mut self.current {
                Current::Idle => {
                    if self.pos >= self.program.len() {
                        return Fetch::Done;
                    }
                    let stmt = self.program[self.pos];
                    self.pos += 1;
                    self.start(stmt);
                }
                Current::Compute { profile, remaining } => {
                    if *remaining == 0 {
                        self.current = Current::Idle;
                        continue;
                    }
                    *remaining -= 1;
                    let p = *profile;
                    self.stats.insts_emitted += 1;
                    return Fetch::Inst(self.gens[p].next_inst(ExecCtx::BUSY));
                }
                Current::Lock(sm) => match sm.next(env) {
                    SyncStep::Inst(i) => {
                        self.stats.insts_emitted += 1;
                        return Fetch::Inst(i);
                    }
                    SyncStep::Stall => return Fetch::Stall,
                    SyncStep::Done => {
                        self.stats.locks_acquired += 1;
                        self.current = Current::Idle;
                    }
                },
                Current::Unlock(sm) => match sm.next(env) {
                    SyncStep::Inst(i) => {
                        self.stats.insts_emitted += 1;
                        return Fetch::Inst(i);
                    }
                    SyncStep::Stall => return Fetch::Stall,
                    SyncStep::Done => self.current = Current::Idle,
                },
                Current::TicketLock(sm) => match sm.next(env) {
                    SyncStep::Inst(i) => {
                        self.stats.insts_emitted += 1;
                        return Fetch::Inst(i);
                    }
                    SyncStep::Stall => return Fetch::Stall,
                    SyncStep::Done => {
                        self.stats.locks_acquired += 1;
                        self.current = Current::Idle;
                    }
                },
                Current::TicketUnlock(sm) => match sm.next(env) {
                    SyncStep::Inst(i) => {
                        self.stats.insts_emitted += 1;
                        return Fetch::Inst(i);
                    }
                    SyncStep::Stall => return Fetch::Stall,
                    SyncStep::Done => self.current = Current::Idle,
                },
                Current::Barrier(sm) => match sm.next(env) {
                    SyncStep::Inst(i) => {
                        self.stats.insts_emitted += 1;
                        return Fetch::Inst(i);
                    }
                    SyncStep::Stall => return Fetch::Stall,
                    SyncStep::Done => {
                        self.stats.barriers_passed += 1;
                        self.current = Current::Idle;
                    }
                },
            }
        }
    }

    fn rmw_result(&mut self, token: RmwToken, old: u64) {
        match &mut self.current {
            Current::Lock(sm) => {
                let acquired = sm.rmw_result(token, old);
                if acquired {
                    self.stats.locks_acquired += 1;
                    self.current = Current::Idle;
                }
            }
            Current::Unlock(sm) => {
                sm.rmw_result(token, old);
                self.current = Current::Idle;
            }
            Current::TicketLock(sm) => {
                sm.rmw_result(token, old);
                // The fetch-add draws the ticket; acquisition completes in
                // the poll loop via next().
            }
            Current::TicketUnlock(sm) => {
                sm.rmw_result(token, old);
                self.current = Current::Idle;
            }
            Current::Barrier(sm) => {
                sm.rmw_result(token, old);
                if sm.is_done() {
                    self.stats.barriers_passed += 1;
                    self.current = Current::Idle;
                }
            }
            _ => unreachable!("rmw_result with no sync operation in flight"),
        }
    }

    fn rewind(&mut self, _n: usize) {
        // The core model never fetches down a wrong path (mispredictions
        // stall fetch until redirect), so streams are never rewound.
        unreachable!("ThreadEngine does not support rewind");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{flatten, Stmt};
    use ptb_isa::{BlockGenConfig, LockId, OpKind};
    use ptb_sync::SyncFabric;

    /// Functional mini-interpreter: runs engines round-robin against a
    /// fabric, applying RMWs immediately. Returns per-thread instruction
    /// counts.
    fn run_functional(spec: &WorkloadSpec, max_steps: usize) -> Vec<EngineStats> {
        struct Env<'a> {
            fabric: &'a SyncFabric,
            cycle: u64,
        }
        impl StreamEnv for Env<'_> {
            fn read_sync_word(&self, addr: ptb_isa::Addr) -> u64 {
                self.fabric.read(addr)
            }
            fn now(&self) -> u64 {
                self.cycle
            }
        }
        let mut fabric = SyncFabric::new();
        let mut engines = spec.engines();
        for step in 0..max_steps {
            let i = step % engines.len();
            if engines[i].finished() {
                if engines.iter().all(|e| e.finished()) {
                    break;
                }
                continue;
            }
            let f = {
                let mut env = Env {
                    fabric: &fabric,
                    cycle: step as u64,
                };
                engines[i].next(&mut env)
            };
            match f {
                Fetch::Inst(inst) => {
                    assert!(inst.validate().is_ok());
                    if let Some(rmw) = inst.rmw {
                        let old = fabric.execute(rmw.op, inst.mem.unwrap().addr, rmw.operand);
                        engines[i].rmw_result(rmw.token, old);
                    }
                }
                Fetch::Stall | Fetch::Done => {}
            }
        }
        assert!(
            engines.iter().all(|e| e.finished()),
            "functional run did not finish"
        );
        engines.iter().map(|e| e.stats).collect()
    }

    fn spec(n: usize, body: &[Stmt]) -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            programs: (0..n).map(|_| flatten(body)).collect(),
            profiles: vec![BlockGenConfig {
                static_len: 16,
                ..Default::default()
            }],
            seed: 3,
            lock_kind: Default::default(),
        }
    }

    #[test]
    fn pure_compute_emits_exactly_count() {
        let s = spec(
            1,
            &[Stmt::Compute {
                profile: 0,
                count: 100,
            }],
        );
        let stats = run_functional(&s, 10_000);
        assert_eq!(stats[0].insts_emitted, 100);
    }

    #[test]
    fn lock_critical_section_completes_for_all_threads() {
        let s = spec(
            4,
            &[Stmt::Repeat {
                times: 3,
                body: vec![
                    Stmt::Lock(LockId(0)),
                    Stmt::Compute {
                        profile: 0,
                        count: 5,
                    },
                    Stmt::Unlock(LockId(0)),
                ],
            }],
        );
        let stats = run_functional(&s, 1_000_000);
        for st in &stats {
            assert_eq!(st.locks_acquired, 3);
        }
    }

    #[test]
    fn barrier_program_completes_and_counts() {
        let s = spec(
            4,
            &[Stmt::Repeat {
                times: 2,
                body: vec![
                    Stmt::Compute {
                        profile: 0,
                        count: 20,
                    },
                    Stmt::Barrier(BarrierId(0)),
                ],
            }],
        );
        let stats = run_functional(&s, 1_000_000);
        for st in &stats {
            assert_eq!(st.barriers_passed, 2);
        }
    }

    #[test]
    fn mixed_program_with_multiple_locks() {
        let s = spec(
            3,
            &[
                Stmt::Compute {
                    profile: 0,
                    count: 10,
                },
                Stmt::Lock(LockId(1)),
                Stmt::Compute {
                    profile: 0,
                    count: 2,
                },
                Stmt::Unlock(LockId(1)),
                Stmt::Lock(LockId(2)),
                Stmt::Compute {
                    profile: 0,
                    count: 2,
                },
                Stmt::Unlock(LockId(2)),
                Stmt::Barrier(BarrierId(1)),
            ],
        );
        let stats = run_functional(&s, 1_000_000);
        for st in &stats {
            assert_eq!(st.locks_acquired, 2);
            assert_eq!(st.barriers_passed, 1);
        }
    }

    #[test]
    fn deterministic_instruction_streams() {
        let s = spec(
            2,
            &[Stmt::Compute {
                profile: 0,
                count: 50,
            }],
        );
        let collect = |spec: &WorkloadSpec| -> Vec<OpKind> {
            let mut engines = spec.engines();
            let fabric = SyncFabric::new();
            struct Env<'a> {
                fabric: &'a SyncFabric,
            }
            impl StreamEnv for Env<'_> {
                fn read_sync_word(&self, addr: ptb_isa::Addr) -> u64 {
                    self.fabric.read(addr)
                }
                fn now(&self) -> u64 {
                    0
                }
            }
            let mut out = Vec::new();
            let mut env = Env { fabric: &fabric };
            while let Fetch::Inst(i) = engines[0].next(&mut env) {
                out.push(i.kind);
            }
            out
        };
        assert_eq!(collect(&s), collect(&s));
    }

    #[test]
    fn ticket_lock_workload_completes_functionally() {
        use crate::spec::LockKind;
        let mut s = spec(
            3,
            &[Stmt::Repeat {
                times: 2,
                body: vec![
                    Stmt::Lock(LockId(0)),
                    Stmt::Compute {
                        profile: 0,
                        count: 4,
                    },
                    Stmt::Unlock(LockId(0)),
                ],
            }],
        );
        s.lock_kind = LockKind::Ticket;
        let stats = run_functional(&s, 1_000_000);
        for st in &stats {
            assert_eq!(st.locks_acquired, 2);
        }
    }

    #[test]
    fn engines_for_different_threads_use_disjoint_private_regions() {
        let s = spec(
            2,
            &[Stmt::Compute {
                profile: 0,
                count: 200,
            }],
        );
        let mut engines = s.engines();
        let fabric = SyncFabric::new();
        struct Env<'a> {
            fabric: &'a SyncFabric,
        }
        impl StreamEnv for Env<'_> {
            fn read_sync_word(&self, addr: ptb_isa::Addr) -> u64 {
                self.fabric.read(addr)
            }
            fn now(&self) -> u64 {
                0
            }
        }
        let mut env = Env { fabric: &fabric };
        let mut privates: Vec<Vec<u64>> = vec![Vec::new(), Vec::new()];
        for t in 0..2 {
            while let Fetch::Inst(i) = engines[t].next(&mut env) {
                if let Some(m) = i.mem {
                    if m.addr.0 >= layout::PRIVATE_BASE.0 {
                        privates[t].push(m.addr.0);
                    }
                }
            }
        }
        assert!(!privates[0].is_empty() && !privates[1].is_empty());
        let max0 = privates[0].iter().max().unwrap();
        let min1 = privates[1].iter().min().unwrap();
        assert!(max0 < min1, "thread privates overlap");
    }
}
