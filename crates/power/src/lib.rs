//! # ptb-power — the power-token model
//!
//! Implements the power abstraction of the paper (§III.B, *Measuring Power
//! in Real-time*):
//!
//! * **Power tokens.** One token is defined as the energy of one
//!   instruction staying in the ROB for one cycle. Each instruction's total
//!   cost is its *base* tokens (all the structure accesses it performs,
//!   known a priori from its class) plus one token per cycle of ROB
//!   residency.
//! * **Eight instruction classes.** The paper groups instructions into 8
//!   k-means clusters of similar base power; [`TokenClass`] reproduces that
//!   quantisation (they report < 1 % estimation error vs. exact joules).
//! * **PTHT.** An 8 K-entry, PC-indexed Power-Token History Table stores
//!   the token cost of each static instruction's last execution; it is read
//!   at fetch to estimate per-cycle power and updated at commit.
//! * **DVFS modes.** The five (V, f) operating points of §III.C with
//!   dynamic power ∝ V²·f and a fast-regulator transition model (Kim,
//!   HPCA'08: 30–50 mV/ns).
//! * **Energy bookkeeping.** Per-core and uncore per-cycle token sampling;
//!   a calibrated joules-per-token constant converts to SI units.
//!
//! What the original obtained from CACTI 5.1 and HotLeakage is replaced by
//! the analytic constants in [`PowerParams`]; they are calibrated so the
//! *ratios* that drive the paper's mechanisms hold (spinning ≈ 25–40 % of
//! busy power, memory-stalled below busy, leakage ≈ 15–20 % of typical),
//! as documented in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod classes;
pub mod dvfs;
pub mod energy;
pub mod model;
pub mod params;
pub mod ptht;
pub mod thermal;

pub use activity::CoreActivity;
pub use classes::TokenClass;
pub use dvfs::{DvfsMode, DFS_MODES, DFS_MODES_REF, DVFS_MODES, DVFS_MODES_REF};
pub use energy::{ChipEnergy, PowerSample};
pub use model::{core_cycle_tokens, uncore_cycle_tokens, UncoreActivity};
pub use params::PowerParams;
pub use ptht::Ptht;
pub use thermal::{ThermalModel, ThermalParams};
