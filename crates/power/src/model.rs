//! Activity → tokens conversion (the per-cycle power model).

use crate::activity::CoreActivity;
use crate::dvfs::DvfsMode;
use crate::params::PowerParams;
use serde::{Deserialize, Serialize};

/// Per-cycle uncore activity (caches, NoC, memory controllers), as plain
/// event counts so this crate stays independent of `ptb-mem`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UncoreActivity {
    /// L1 array accesses.
    pub l1_accesses: u64,
    /// L2 array accesses.
    pub l2_accesses: u64,
    /// NoC flit-hops.
    pub noc_flit_hops: u64,
    /// Main-memory accesses.
    pub mem_accesses: u64,
}

/// Tokens consumed by one core in one global cycle.
///
/// Dynamic components only accrue when the core's clock ticked; they scale
/// with V² under DVFS. Leakage accrues every global cycle and scales with
/// V. Clock gating (always on, as in the paper's baseline) reduces the
/// window/ROB background cost on cycles with no issue activity.
pub fn core_cycle_tokens(p: &PowerParams, a: &CoreActivity, mode: DvfsMode) -> f64 {
    let mut dynamic = 0.0;
    if a.ticked {
        dynamic += f64::from(a.fetched) * p.fetch_cost;
        dynamic += f64::from(a.wrongpath) * p.wrongpath_cost;
        dynamic += f64::from(a.dispatched) * p.decode_cost;
        dynamic += a.issued_base_tokens;
        // Per-entry clock gating: active window entries pay the full
        // wakeup/select/bypass cost, stalled ones only a gated residue.
        let active = a.rob_active.min(a.rob_occupancy);
        dynamic += f64::from(active) * p.rob_occ_cost;
        dynamic += f64::from(a.rob_occupancy - active) * p.rob_occ_gated_cost;
        dynamic += f64::from(a.ptht_accesses) * p.ptht_access;
    }
    dynamic * mode.dynamic_scale() + p.core_leakage * mode.leakage_scale()
}

/// Tokens consumed by the uncore (shared) structures in one global cycle.
pub fn uncore_cycle_tokens(p: &PowerParams, u: &UncoreActivity) -> f64 {
    u.l1_accesses as f64 * p.l1_access
        + u.l2_accesses as f64 * p.l2_access
        + u.noc_flit_hops as f64 * p.noc_flit_hop
        + u.mem_accesses as f64 * p.mem_access
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_activity() -> CoreActivity {
        CoreActivity {
            ticked: true,
            fetched: 3,
            wrongpath: 0,
            dispatched: 3,
            issued_base_tokens: 150.0,
            issued: 2,
            committed: 2,
            rob_occupancy: 60,
            rob_active: 20,
            lsq_occupancy: 12,
            ptht_accesses: 5,
        }
    }

    #[test]
    fn idle_core_pays_only_leakage() {
        let p = PowerParams::default();
        let a = CoreActivity::default();
        let t = core_cycle_tokens(&p, &a, DvfsMode::NOMINAL);
        assert_eq!(t, p.core_leakage);
    }

    #[test]
    fn busy_exceeds_stalled_exceeds_idle() {
        let p = PowerParams::default();
        let busy = core_cycle_tokens(&p, &busy_activity(), DvfsMode::NOMINAL);
        let stalled = CoreActivity {
            ticked: true,
            rob_occupancy: 128,
            ..Default::default()
        };
        let stalled_t = core_cycle_tokens(&p, &stalled, DvfsMode::NOMINAL);
        let idle = core_cycle_tokens(&p, &CoreActivity::default(), DvfsMode::NOMINAL);
        assert!(busy > stalled_t, "busy {busy} <= stalled {stalled_t}");
        assert!(stalled_t > idle);
    }

    #[test]
    fn dvfs_scales_dynamic_quadratically_and_leakage_linearly() {
        let p = PowerParams::default();
        let a = busy_activity();
        let nominal = core_cycle_tokens(&p, &a, DvfsMode::NOMINAL);
        let low = DvfsMode { v: 0.9, f: 0.9 };
        let scaled = core_cycle_tokens(&p, &a, low);
        let dyn_nominal = nominal - p.core_leakage;
        let expect = dyn_nominal * 0.81 + p.core_leakage * 0.9;
        assert!((scaled - expect).abs() < 1e-9);
    }

    #[test]
    fn per_entry_gating_reduces_background_for_stalled_windows() {
        let p = PowerParams::default();
        let mut a = busy_activity();
        a.rob_active = 0; // everything stalled (e.g. chained spin loop)
        a.issued = 0;
        a.issued_base_tokens = 0.0;
        let gated = core_cycle_tokens(&p, &a, DvfsMode::NOMINAL);
        let mut b = busy_activity();
        b.rob_active = 60; // all entries hot
        b.issued = 0;
        b.issued_base_tokens = 0.0;
        let ungated = core_cycle_tokens(&p, &b, DvfsMode::NOMINAL);
        assert!(gated < ungated);
        // The gap is the per-entry gating saving.
        let expect = 60.0 * (p.rob_occ_cost - p.rob_occ_gated_cost);
        assert!(((ungated - gated) - expect).abs() < 1e-9);
    }

    #[test]
    fn uncore_tokens_accumulate_all_sources() {
        let p = PowerParams::default();
        let u = UncoreActivity {
            l1_accesses: 2,
            l2_accesses: 1,
            noc_flit_hops: 10,
            mem_accesses: 1,
        };
        let t = uncore_cycle_tokens(&p, &u);
        let expect = 2.0 * p.l1_access + p.l2_access + 10.0 * p.noc_flit_hop + p.mem_access;
        assert!((t - expect).abs() < 1e-12);
        assert_eq!(uncore_cycle_tokens(&p, &UncoreActivity::default()), 0.0);
    }
}
