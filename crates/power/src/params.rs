//! Calibrated power parameters (the CACTI 5.1 / HotLeakage substitute).
//!
//! All energies are expressed in **power tokens** (1 token = energy of one
//! instruction residing in the ROB for one cycle, the paper's unit). A
//! single `joules_per_token` constant converts to SI units; it is chosen so
//! a fully-busy core at 3 GHz and 0.9 V dissipates ≈ 7 W, in line with the
//! per-core budget arithmetic of the paper's §IV.D example (100 W TDP /
//! 16 cores = 6.25 W).
//!
//! Calibration goals (these drive the paper's mechanisms, see DESIGN.md):
//! * a spinning core draws ≈ 25–40 % of a busy core,
//! * a memory-stalled core draws *less* than a busy one (clock gating),
//! * leakage is ≈ 15–20 % of typical total power at nominal V,
//! * typical busy power lands at ≈ 55–70 % of peak, so a 50 % budget binds.

use crate::classes::TokenClass;
use serde::{Deserialize, Serialize};

/// All power-model constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Base tokens per instruction class (indexed by [`TokenClass::index`]).
    pub class_base: [f64; 8],
    /// Tokens per instruction passing through fetch (I-cache + predictor).
    pub fetch_cost: f64,
    /// Tokens per instruction passing through decode/rename/dispatch.
    pub decode_cost: f64,
    /// Tokens per wrong-path fetch slot (front-end burns power after a
    /// misprediction until redirect).
    pub wrongpath_cost: f64,
    /// Tokens per ROB occupant per cycle while the core is actively
    /// issuing (ungated window/bypass/wakeup power).
    pub rob_occ_cost: f64,
    /// Same, when the core issued nothing this cycle and clock gating
    /// engages (the paper's baseline uses clock gating).
    pub rob_occ_gated_cost: f64,
    /// Static (leakage) tokens per core per cycle at nominal voltage.
    pub core_leakage: f64,
    /// Tokens per L1 array access (uncore side).
    pub l1_access: f64,
    /// Tokens per L2 array access.
    pub l2_access: f64,
    /// Tokens per NoC flit-hop.
    pub noc_flit_hop: f64,
    /// Tokens per main-memory access (controller + DRAM activate, amortised).
    pub mem_access: f64,
    /// Tokens per PTHT read/update (the table's own overhead, which the
    /// paper accounts for in its results).
    pub ptht_access: f64,
    /// Joules per token (SI conversion).
    pub joules_per_token: f64,
    /// Nominal clock, Hz (Table 1: 3 GHz).
    pub freq_hz: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            // Trivial, IntSimple, Control, IntComplex, FpSimple, FpComplex,
            // MemRead, MemWrite — 32 nm class centroids.
            class_base: [8.0, 40.0, 44.0, 100.0, 80.0, 140.0, 80.0, 88.0],
            fetch_cost: 10.0,
            decode_cost: 10.0,
            wrongpath_cost: 14.0,
            rob_occ_cost: 1.0,
            rob_occ_gated_cost: 0.15,
            core_leakage: 55.0,
            l1_access: 6.0,
            l2_access: 22.0,
            noc_flit_hop: 3.0,
            mem_access: 180.0,
            ptht_access: 1.5,
            // ~7 W busy core at 3 GHz with ~330 tokens/cycle typical:
            // 7 / (3e9 * 330) ≈ 7.1e-12 J/token.
            joules_per_token: 7.1e-12,
            freq_hz: 3.0e9,
        }
    }
}

impl PowerParams {
    /// Base tokens of `class`.
    #[inline]
    pub fn base(&self, class: TokenClass) -> f64 {
        self.class_base[class.index()]
    }

    /// Analytic per-core peak tokens/cycle: full-width issue of a balanced
    /// worst mix, full front-end, full ROB, leakage. This is the "original
    /// processor peak power" the paper's budgets are fractions of.
    ///
    /// `issue_width`/`rob_size` come from the core configuration.
    pub fn peak_core_tokens(&self, issue_width: usize, rob_size: usize, fetch_width: usize) -> f64 {
        // The "original processor peak power" the paper budgets against is
        // the hottest *sustained* operating point, not the sum of every
        // structure's worst case (no workload issues 4 FpComplex every
        // cycle with a full window). We model it as: half-width sustained
        // issue of the average-class mix, a half-occupied window, a
        // half-busy front end, plus leakage. Calibrated (see DESIGN.md) so
        // that busy phases of the synthetic benchmarks run 5-25 % *over*
        // a 50 % budget — the regime of the paper's Figure 5 — while
        // spinning cores sit well under it and become token donors.
        let hot_mix_base = self.class_base.iter().sum::<f64>() / 8.0;
        (issue_width as f64 * 0.6) * hot_mix_base
            + (rob_size as f64 / 4.0) * self.rob_occ_cost
            + (rob_size as f64 / 2.0) * self.rob_occ_gated_cost
            + (fetch_width as f64 / 2.0) * (self.fetch_cost + self.decode_cost)
            + self.core_leakage
    }

    /// Convert tokens to joules.
    #[inline]
    pub fn joules(&self, tokens: f64) -> f64 {
        tokens * self.joules_per_token
    }

    /// Convert a per-cycle token rate to watts.
    #[inline]
    pub fn watts(&self, tokens_per_cycle: f64) -> f64 {
        self.joules(tokens_per_cycle) * self.freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_hit_calibration_targets() {
        let p = PowerParams::default();
        let peak = p.peak_core_tokens(4, 128, 4);
        // Typical busy core: ~1.8 IPC of balanced mix, ~60-entry window
        // with a third of it active, plus front end.
        let balanced = (p.base(TokenClass::IntSimple) * 2.0
            + p.base(TokenClass::MemRead)
            + p.base(TokenClass::Control))
            / 4.0;
        let busy = 1.8 * balanced
            + 20.0 * p.rob_occ_cost
            + 40.0 * p.rob_occ_gated_cost
            + 2.5 * (p.fetch_cost + p.decode_cost)
            + p.core_leakage;
        let ratio = busy / peak;
        assert!(
            (0.65..1.30).contains(&ratio),
            "busy/peak ratio {ratio} off target"
        );
        // Spin loop: ~0.7 IPC of load+branch, tiny ROB occupancy.
        let spin_mix = (p.base(TokenClass::MemRead) + p.base(TokenClass::Control)) / 2.0;
        let spin = 0.7 * spin_mix
            + 5.0 * p.rob_occ_cost
            + 1.0 * (p.fetch_cost + p.decode_cost)
            + p.core_leakage;
        let spin_ratio = spin / busy;
        assert!(
            (0.2..0.65).contains(&spin_ratio),
            "spin/busy ratio {spin_ratio} off target"
        );
        // Leakage share of busy.
        let leak_share = p.core_leakage / busy;
        assert!(
            (0.1..0.3).contains(&leak_share),
            "leakage share {leak_share} off target"
        );
    }

    #[test]
    fn busy_core_wattage_is_plausible() {
        let p = PowerParams::default();
        // ~330 tokens/cycle busy -> ~7 W.
        let w = p.watts(330.0);
        assert!((5.0..9.0).contains(&w), "busy watts {w}");
    }

    #[test]
    fn stalled_core_draws_less_than_busy() {
        let p = PowerParams::default();
        // Full ROB, all entries stalled (per-entry gated), nothing issuing.
        let stalled = 128.0 * p.rob_occ_gated_cost + p.core_leakage;
        let busy = 250.0;
        assert!(stalled < busy * 0.5, "stalled {stalled} not below busy/2");
    }

    #[test]
    fn class_bases_are_monotone_where_expected() {
        let p = PowerParams::default();
        assert!(p.base(TokenClass::Trivial) < p.base(TokenClass::IntSimple));
        assert!(p.base(TokenClass::IntSimple) < p.base(TokenClass::IntComplex));
        assert!(p.base(TokenClass::FpSimple) < p.base(TokenClass::FpComplex));
        assert!(p.base(TokenClass::MemRead) <= p.base(TokenClass::MemWrite));
    }
}
