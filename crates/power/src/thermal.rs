//! Lumped-RC thermal model.
//!
//! The paper motivates power budgets with thermal arguments and reports
//! that PTB yields "a more stable temperature over execution time (due to
//! the increased accuracy when matching the power budget)". To evaluate
//! that claim we model each core as a lumped thermal node — the standard
//! HotSpot-style first-order abstraction:
//!
//! ```text
//!   C · dT/dt = P − (T − T_amb) / R − (T − T_neigh) / R_lat
//! ```
//!
//! with a per-core vertical resistance `R` to ambient (heat-sink path), a
//! lateral resistance `R_lat` to mesh neighbours, and thermal capacitance
//! `C`. Integrated explicitly once per sampling interval (thermal time
//! constants are ~ms, i.e. millions of cycles, so coarse sampling is
//! accurate and cheap).

use serde::{Deserialize, Serialize};

/// Thermal model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Ambient (heat-sink base) temperature, °C.
    pub ambient: f64,
    /// Vertical thermal resistance core→ambient, K/W.
    pub r_vertical: f64,
    /// Lateral thermal resistance between mesh-adjacent cores, K/W.
    pub r_lateral: f64,
    /// Thermal capacitance per core, J/K.
    pub capacitance: f64,
    /// Seconds between integration steps (sampling interval).
    pub dt: f64,
}

impl Default for ThermalParams {
    fn default() -> Self {
        ThermalParams {
            ambient: 45.0,
            // ~6 W sustained should settle ≈ 45 + 6×4.5 ≈ 72 °C.
            r_vertical: 4.5,
            r_lateral: 9.0,
            // ACCELERATED thermal mass: physical die+spreader capacitance
            // gives τ = R·C ≈ 0.1 s — milliseconds of simulated time,
            // unreachable in runs of a few hundred thousand cycles. As is
            // common in simulation studies, the capacitance is scaled so
            // the thermal time constant (τ ≈ 10 µs ≈ 30 k cycles) fits
            // inside the simulated window and steady-state/stability
            // *comparisons* between mechanisms are meaningful. Absolute
            // transients are correspondingly accelerated.
            capacitance: 2.2e-6,
            // Integrate every 1 µs of simulated time (3k cycles @3 GHz).
            dt: 1e-6,
        }
    }
}

/// Per-core lumped thermal state on a mesh floorplan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalModel {
    params: ThermalParams,
    /// Core temperatures, °C.
    temps: Vec<f64>,
    /// Mesh width (row-major floorplan, same layout as the NoC).
    width: usize,
    /// Running peak of any core temperature.
    pub max_temp: f64,
    /// Per-core running mean accumulators.
    sum_temps: Vec<f64>,
    sum_sq: Vec<f64>,
    steps: u64,
}

impl ThermalModel {
    /// Model for `n_cores` arranged row-major with `width` columns.
    pub fn new(params: ThermalParams, n_cores: usize, width: usize) -> Self {
        assert!(n_cores >= 1 && width >= 1);
        ThermalModel {
            params,
            temps: vec![params.ambient; n_cores],
            width,
            max_temp: params.ambient,
            sum_temps: vec![0.0; n_cores],
            sum_sq: vec![0.0; n_cores],
            steps: 0,
        }
    }

    /// Current temperature of `core`.
    pub fn temp(&self, core: usize) -> f64 {
        self.temps[core]
    }

    /// Hottest core right now.
    pub fn hottest(&self) -> f64 {
        self.temps.iter().copied().fold(f64::MIN, f64::max)
    }

    fn neighbours(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let w = self.width;
        let n = self.temps.len();
        let x = i % w;
        [
            (x > 0).then(|| i - 1),
            (x + 1 < w && i + 1 < n).then_some(i + 1),
            (i >= w).then(|| i - w),
            (i + w < n).then_some(i + w),
        ]
        .into_iter()
        .flatten()
    }

    /// Advance one integration step with each core dissipating
    /// `watts[i]` over the interval.
    pub fn step(&mut self, watts: &[f64]) {
        debug_assert_eq!(watts.len(), self.temps.len());
        let p = self.params;
        let old = self.temps.clone();
        for i in 0..self.temps.len() {
            let vertical = (old[i] - p.ambient) / p.r_vertical;
            let lateral: f64 = self
                .neighbours(i)
                .map(|j| (old[i] - old[j]) / p.r_lateral)
                .sum();
            let d_t = (watts[i] - vertical - lateral) * p.dt / p.capacitance;
            self.temps[i] = old[i] + d_t;
            if self.temps[i] > self.max_temp {
                self.max_temp = self.temps[i];
            }
        }
        for i in 0..self.temps.len() {
            self.sum_temps[i] += self.temps[i];
            self.sum_sq[i] += self.temps[i] * self.temps[i];
        }
        self.steps += 1;
    }

    /// Mean temperature of `core` over the run.
    pub fn mean_temp(&self, core: usize) -> f64 {
        if self.steps == 0 {
            self.params.ambient
        } else {
            self.sum_temps[core] / self.steps as f64
        }
    }

    /// Temperature standard deviation of `core` over the run (the paper's
    /// stability claim: lower under PTB).
    pub fn temp_stddev(&self, core: usize) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        let n = self.steps as f64;
        let mean = self.sum_temps[core] / n;
        (self.sum_sq[core] / n - mean * mean).max(0.0).sqrt()
    }

    /// Chip-mean of per-core temperature standard deviations.
    pub fn mean_stddev(&self) -> f64 {
        let n = self.temps.len() as f64;
        (0..self.temps.len())
            .map(|c| self.temp_stddev(c))
            .sum::<f64>()
            / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize, width: usize) -> ThermalModel {
        ThermalModel::new(ThermalParams::default(), n, width)
    }

    #[test]
    fn starts_at_ambient() {
        let m = model(4, 2);
        for c in 0..4 {
            assert_eq!(m.temp(c), 45.0);
        }
    }

    #[test]
    fn constant_power_settles_near_analytic_steady_state() {
        let mut m = model(1, 1);
        // Single core, no lateral paths: T_ss = amb + P*R = 45 + 6*4.5 = 72.
        for _ in 0..200_000 {
            m.step(&[6.0]);
        }
        let t = m.temp(0);
        assert!((t - 72.0).abs() < 1.0, "steady state {t} != ~72");
    }

    #[test]
    fn hotter_neighbour_heats_idle_core() {
        let mut m = model(2, 2);
        for _ in 0..100_000 {
            m.step(&[8.0, 0.0]);
        }
        assert!(m.temp(1) > 46.0, "lateral coupling missing: {}", m.temp(1));
        assert!(m.temp(0) > m.temp(1));
    }

    #[test]
    fn stable_power_has_lower_stddev_than_oscillating() {
        let mut stable = model(1, 1);
        let mut osc = model(1, 1);
        for i in 0..400_000u64 {
            stable.step(&[4.0]);
            // Slow square wave (period ≫ thermal time constant so the
            // temperature actually follows it).
            osc.step(&[if (i / 100_000) % 2 == 0 { 0.0 } else { 8.0 }]);
        }
        assert!(
            stable.temp_stddev(0) < osc.temp_stddev(0) / 2.0,
            "stable {} vs oscillating {}",
            stable.temp_stddev(0),
            osc.temp_stddev(0)
        );
    }

    #[test]
    fn max_temp_tracks_peak() {
        let mut m = model(1, 1);
        for _ in 0..100_000 {
            m.step(&[10.0]);
        }
        let peak = m.max_temp;
        for _ in 0..100_000 {
            m.step(&[0.0]);
        }
        assert_eq!(m.max_temp, peak, "max must not decay");
        assert!(m.temp(0) < peak);
    }

    #[test]
    fn mesh_neighbour_enumeration() {
        let m = model(16, 4);
        // Corner 0: east + south.
        assert_eq!(m.neighbours(0).collect::<Vec<_>>(), vec![1, 4]);
        // Centre 5: west, east, north, south.
        let mut n5 = m.neighbours(5).collect::<Vec<_>>();
        n5.sort_unstable();
        assert_eq!(n5, vec![1, 4, 6, 9]);
        // Corner 15: west + north.
        let mut n15 = m.neighbours(15).collect::<Vec<_>>();
        n15.sort_unstable();
        assert_eq!(n15, vec![11, 14]);
    }
}
