//! The Power-Token History Table (PTHT).
//!
//! An 8 K-entry, PC-indexed table storing the token cost (base + ROB
//! residency) of each static instruction's **last** execution (§III.B).
//! The fetch stage reads it to estimate the power of in-flight work; the
//! commit stage writes the measured cost back. Its own access energy is
//! charged through `CoreActivity::ptht_accesses`.

use serde::{Deserialize, Serialize};

/// Default table size from the paper: 8 K entries.
pub const PTHT_ENTRIES: usize = 8192;

/// PC-indexed history of per-instruction token costs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ptht {
    table: Vec<u16>,
    mask: usize,
    /// Total reads + writes (energy accounting).
    pub accesses: u64,
    /// Estimation bookkeeping: sum of |estimate − actual| and count, to
    /// reproduce the paper's < 1 % estimation-error claim.
    pub abs_err: f64,
    /// Number of (estimate, actual) pairs folded into `abs_err`.
    pub err_samples: u64,
    /// Sum of actual costs seen at commit (error normalisation).
    pub actual_sum: f64,
}

impl Default for Ptht {
    fn default() -> Self {
        Self::new(PTHT_ENTRIES)
    }
}

impl Ptht {
    /// Create a table with `entries` slots (power of two).
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "PTHT size must be a power of two"
        );
        Ptht {
            table: vec![0; entries],
            mask: entries - 1,
            accesses: 0,
            abs_err: 0.0,
            err_samples: 0,
            actual_sum: 0.0,
        }
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Fetch-time estimate of the token cost of the instruction at `pc`
    /// (its last execution's cost; 0 for never-seen instructions).
    pub fn estimate(&mut self, pc: u64) -> f64 {
        self.accesses += 1;
        f64::from(self.table[self.index(pc)])
    }

    /// Commit-time update with the measured cost (base + ROB residency
    /// cycles). Also folds the estimation error into the accuracy stats.
    pub fn update(&mut self, pc: u64, actual_tokens: f64) {
        self.accesses += 1;
        let idx = self.index(pc);
        let prev = f64::from(self.table[idx]);
        if self.table[idx] != 0 || prev == actual_tokens {
            // Only count error once the entry has been trained.
            self.abs_err += (prev - actual_tokens).abs();
            self.err_samples += 1;
            self.actual_sum += actual_tokens;
        }
        self.table[idx] = actual_tokens.round().clamp(0.0, f64::from(u16::MAX)) as u16;
    }

    /// Mean relative estimation error over trained entries, in [0, 1].
    pub fn relative_error(&self) -> f64 {
        if self.actual_sum == 0.0 {
            0.0
        } else {
            self.abs_err / self.actual_sum
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_table_estimates_zero() {
        let mut t = Ptht::new(1024);
        assert_eq!(t.estimate(0x4000), 0.0);
    }

    #[test]
    fn update_then_estimate_roundtrips() {
        let mut t = Ptht::new(1024);
        t.update(0x4000, 57.0);
        assert_eq!(t.estimate(0x4000), 57.0);
        // Different pc, same entry only if aliasing: pick a pc in another
        // slot.
        assert_eq!(t.estimate(0x4004), 0.0);
    }

    #[test]
    fn aliasing_wraps_at_table_size() {
        let mut t = Ptht::new(16);
        t.update(0x0, 10.0);
        // pc >> 2 differs by exactly table size -> same slot.
        assert_eq!(t.estimate(64 * 4 / 64 * 64), t.estimate(0)); // same slot 0
        t.update(16 * 4, 99.0); // (pc>>2)=16 -> slot 0 again
        assert_eq!(t.estimate(0x0), 99.0);
    }

    #[test]
    fn stable_costs_give_low_relative_error() {
        let mut t = Ptht::new(256);
        // A loop of 32 static instructions with stable costs, many
        // iterations.
        for _ in 0..100 {
            for pc in (0..32 * 4).step_by(4) {
                t.update(pc as u64, 40.0 + f64::from(pc % 3));
            }
        }
        assert!(t.relative_error() < 0.01, "err {}", t.relative_error());
    }

    #[test]
    fn volatile_costs_give_higher_error() {
        let mut t = Ptht::new(256);
        for i in 0..1000u64 {
            t.update(0x100, if i % 2 == 0 { 10.0 } else { 300.0 });
        }
        assert!(t.relative_error() > 0.5);
    }

    #[test]
    fn accesses_counted() {
        let mut t = Ptht::new(64);
        t.estimate(0);
        t.update(0, 5.0);
        t.estimate(0);
        assert_eq!(t.accesses, 3);
    }

    #[test]
    fn saturates_at_u16() {
        let mut t = Ptht::new(64);
        t.update(0, 1e9);
        assert_eq!(t.estimate(0), f64::from(u16::MAX));
    }
}
