//! Per-cycle core activity sample (produced by `ptb-uarch`, consumed by
//! the power model).

use serde::{Deserialize, Serialize};

/// What one core did in one of its clock cycles.
///
/// The out-of-order core fills one of these per tick; the power model turns
/// it into tokens. Committed-instruction token totals (base + residency)
/// are reported separately for PTHT updates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreActivity {
    /// Did the core's clock tick this cycle? (False under DFS/DVFS skipped
    /// cycles: only leakage then.)
    pub ticked: bool,
    /// Correct-path instructions fetched.
    pub fetched: u32,
    /// Wrong-path fetch slots consumed (post-misprediction).
    pub wrongpath: u32,
    /// Instructions dispatched (decode/rename).
    pub dispatched: u32,
    /// Base tokens of instructions issued to FUs this cycle (sum of class
    /// centroids).
    pub issued_base_tokens: f64,
    /// Instructions issued.
    pub issued: u32,
    /// Instructions committed.
    pub committed: u32,
    /// ROB occupancy at end of cycle.
    pub rob_occupancy: u32,
    /// ROB entries that are *active* this cycle (operands ready / waiting
    /// to issue / executing / holding an outstanding memory access). The
    /// rest are stalled and per-entry clock gating keeps them cheap.
    pub rob_active: u32,
    /// LSQ occupancy at end of cycle.
    pub lsq_occupancy: u32,
    /// PTHT reads + writes performed.
    pub ptht_accesses: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_idle() {
        let a = CoreActivity::default();
        assert!(!a.ticked);
        assert_eq!(a.fetched, 0);
        assert_eq!(a.issued_base_tokens, 0.0);
    }
}
