//! The eight power-token instruction classes.
//!
//! The paper computed per-instruction base power by running SPECint2000 and
//! then clustered instruction types into **8 groups** with k-means; using
//! the group centroid instead of the exact per-instruction joules costs
//! < 1 % accuracy. We reproduce the quantisation: every [`OpKind`] maps to
//! one of eight classes, and each class has a base token cost.

use ptb_isa::OpKind;
use serde::{Deserialize, Serialize};

/// One of the paper's eight k-means instruction power groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenClass {
    /// Bubbles / nops.
    Trivial,
    /// Simple integer ALU.
    IntSimple,
    /// Control transfer (branch/jump: predictor + redirect datapath).
    Control,
    /// Integer multiply/divide.
    IntComplex,
    /// FP add/compare.
    FpSimple,
    /// FP multiply/divide.
    FpComplex,
    /// Loads (address generation + L1 read port).
    MemRead,
    /// Stores and atomics (L1 write port, store queue, RMW sequencing).
    MemWrite,
}

impl TokenClass {
    /// All classes, in a stable order.
    pub const ALL: [TokenClass; 8] = [
        TokenClass::Trivial,
        TokenClass::IntSimple,
        TokenClass::Control,
        TokenClass::IntComplex,
        TokenClass::FpSimple,
        TokenClass::FpComplex,
        TokenClass::MemRead,
        TokenClass::MemWrite,
    ];

    /// Class of an operation kind.
    pub fn of(kind: OpKind) -> TokenClass {
        match kind {
            OpKind::Nop => TokenClass::Trivial,
            OpKind::IntAlu => TokenClass::IntSimple,
            OpKind::Branch | OpKind::Jump => TokenClass::Control,
            OpKind::IntMul => TokenClass::IntComplex,
            OpKind::FpAlu => TokenClass::FpSimple,
            OpKind::FpMul => TokenClass::FpComplex,
            OpKind::Load => TokenClass::MemRead,
            OpKind::Store | OpKind::AtomicRmw => TokenClass::MemWrite,
        }
    }

    /// Stable dense index (for per-class tables).
    pub fn index(self) -> usize {
        match self {
            TokenClass::Trivial => 0,
            TokenClass::IntSimple => 1,
            TokenClass::Control => 2,
            TokenClass::IntComplex => 3,
            TokenClass::FpSimple => 4,
            TokenClass::FpComplex => 5,
            TokenClass::MemRead => 6,
            TokenClass::MemWrite => 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_eight_classes_cover_all_kinds() {
        let mut seen = std::collections::HashSet::new();
        for kind in OpKind::ALL {
            seen.insert(TokenClass::of(kind));
        }
        assert!(seen.len() <= 8);
        // All eight classes are reachable.
        assert_eq!(
            TokenClass::ALL
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            8
        );
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut idx: Vec<usize> = TokenClass::ALL.iter().map(|c| c.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn memory_and_control_grouping() {
        assert_eq!(TokenClass::of(OpKind::Branch), TokenClass::of(OpKind::Jump));
        assert_eq!(
            TokenClass::of(OpKind::Store),
            TokenClass::of(OpKind::AtomicRmw)
        );
        assert_ne!(TokenClass::of(OpKind::Load), TokenClass::of(OpKind::Store));
    }
}
