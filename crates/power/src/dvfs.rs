//! DVFS operating points and transition model.
//!
//! §III.C of the paper evaluates DVFS with five power modes
//! (V<sub>DD</sub> %, f %): (100, 100), (95, 95), (90, 90), (90, 75),
//! (90, 65) — and DFS with the same frequency ladder at constant voltage.
//! Dynamic power scales as V²·f; leakage scales ≈ linearly with V over
//! this narrow range (the HotLeakage exponential linearised around 0.9 V).
//!
//! Mode transitions use Kim et al.'s fast on-chip regulators (HPCA 2008,
//! 30–50 mV/ns) as the paper does ("a best case scenario for DVFS"): a
//! full 10 % V<sub>DD</sub> swing at 0.9 V is ~90 mV ⇒ ~2–3 ns ⇒ ~8 cycles
//! at 3 GHz, during which the core is stalled.

use serde::{Deserialize, Serialize};

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsMode {
    /// Voltage as a fraction of nominal.
    pub v: f64,
    /// Frequency as a fraction of nominal.
    pub f: f64,
}

/// The paper's five modes, from fastest (index 0) to slowest.
pub const DVFS_MODES: [DvfsMode; 5] = [
    DvfsMode { v: 1.00, f: 1.00 },
    DvfsMode { v: 0.95, f: 0.95 },
    DvfsMode { v: 0.90, f: 0.90 },
    DvfsMode { v: 0.90, f: 0.75 },
    DvfsMode { v: 0.90, f: 0.65 },
];

/// Static reference to [`DVFS_MODES`] (for controllers that hold a ladder).
pub static DVFS_MODES_REF: &[DvfsMode; 5] = &DVFS_MODES;

/// DFS-only ladder: same frequencies, voltage pinned at nominal.
pub const DFS_MODES: [DvfsMode; 5] = [
    DvfsMode { v: 1.00, f: 1.00 },
    DvfsMode { v: 1.00, f: 0.95 },
    DvfsMode { v: 1.00, f: 0.90 },
    DvfsMode { v: 1.00, f: 0.75 },
    DvfsMode { v: 1.00, f: 0.65 },
];

/// Static reference to [`DFS_MODES`].
pub static DFS_MODES_REF: &[DvfsMode; 5] = &DFS_MODES;

impl DvfsMode {
    /// Nominal operation.
    pub const NOMINAL: DvfsMode = DvfsMode { v: 1.0, f: 1.0 };

    /// Scale factor for *per-cycle* dynamic energy: V². (The frequency
    /// factor of P ∝ V²f appears through the core ticking fewer cycles.)
    #[inline]
    pub fn dynamic_scale(&self) -> f64 {
        self.v * self.v
    }

    /// Scale factor for leakage power (linearised V dependence).
    #[inline]
    pub fn leakage_scale(&self) -> f64 {
        self.v
    }

    /// Stall cycles to switch between two modes with fast on-chip
    /// regulators: proportional to the voltage swing (≈ 40 mV/ns at
    /// 0.9 V nominal and 3 GHz ⇒ ≈ 8 cycles per 10 % swing), minimum 2
    /// cycles for a frequency-only change (PLL relock is hidden).
    pub fn transition_cycles(from: DvfsMode, to: DvfsMode) -> u64 {
        if from == to {
            return 0;
        }
        let dv = (from.v - to.v).abs();
        let v_cycles = (dv / 0.10 * 8.0).round() as u64;
        v_cycles.max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_power() {
        let mut last = f64::INFINITY;
        for m in DVFS_MODES {
            let p = m.dynamic_scale() * m.f; // P ∝ V² f
            assert!(p < last, "modes must strictly reduce dynamic power");
            last = p;
        }
    }

    #[test]
    fn dfs_reduces_only_frequency() {
        for m in DFS_MODES {
            assert_eq!(m.v, 1.0);
        }
        assert!(DFS_MODES.windows(2).all(|w| w[1].f < w[0].f));
    }

    #[test]
    fn lowest_mode_halves_dynamic_power() {
        let m = DVFS_MODES[4];
        let p = m.dynamic_scale() * m.f;
        assert!((p - 0.5265).abs() < 1e-9);
    }

    #[test]
    fn transition_costs() {
        assert_eq!(DvfsMode::transition_cycles(DVFS_MODES[0], DVFS_MODES[0]), 0);
        // 5% V swing -> 4 cycles.
        assert_eq!(DvfsMode::transition_cycles(DVFS_MODES[0], DVFS_MODES[1]), 4);
        // Frequency-only change.
        assert_eq!(DvfsMode::transition_cycles(DVFS_MODES[2], DVFS_MODES[3]), 2);
        // 10% swing -> 8 cycles.
        assert_eq!(DvfsMode::transition_cycles(DVFS_MODES[0], DVFS_MODES[2]), 8);
    }

    #[test]
    fn leakage_scale_tracks_voltage() {
        assert_eq!(DVFS_MODES[0].leakage_scale(), 1.0);
        assert!((DVFS_MODES[2].leakage_scale() - 0.9).abs() < 1e-12);
    }
}
