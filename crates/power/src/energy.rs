//! Energy integration over a run.

use serde::{Deserialize, Serialize};

/// One global cycle's power snapshot, in tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Per-core tokens this cycle.
    pub per_core: Vec<f64>,
    /// Uncore tokens this cycle.
    pub uncore: f64,
}

impl PowerSample {
    /// Total chip tokens this cycle.
    pub fn chip(&self) -> f64 {
        self.per_core.iter().sum::<f64>() + self.uncore
    }
}

/// Running energy totals for a simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChipEnergy {
    /// Cycles integrated.
    pub cycles: u64,
    /// Total tokens per core.
    pub per_core: Vec<f64>,
    /// Total uncore tokens.
    pub uncore: f64,
    /// Running peak of per-cycle chip tokens.
    pub max_chip_cycle: f64,
    /// Σ chip tokens (= per_core totals + uncore, kept for O(1) reads).
    pub total: f64,
    /// Σ chip² (for power variance / standard deviation reporting).
    sum_sq: f64,
}

impl ChipEnergy {
    /// Zeroed accumulator for `n` cores.
    pub fn new(n_cores: usize) -> Self {
        ChipEnergy {
            per_core: vec![0.0; n_cores],
            ..Default::default()
        }
    }

    /// Fold in one cycle's sample.
    pub fn add(&mut self, sample: &PowerSample) {
        debug_assert_eq!(sample.per_core.len(), self.per_core.len());
        self.cycles += 1;
        let chip = sample.chip();
        for (acc, &s) in self.per_core.iter_mut().zip(&sample.per_core) {
            *acc += s;
        }
        self.uncore += sample.uncore;
        self.total += chip;
        self.sum_sq += chip * chip;
        if chip > self.max_chip_cycle {
            self.max_chip_cycle = chip;
        }
    }

    /// Mean chip tokens/cycle.
    pub fn mean_power(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total / self.cycles as f64
        }
    }

    /// Standard deviation of per-cycle chip tokens (the paper reports PTB's
    /// minimal power deviation from the budget).
    pub fn power_stddev(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let n = self.cycles as f64;
        let mean = self.total / n;
        (self.sum_sq / n - mean * mean).max(0.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(per_core: &[f64], uncore: f64) -> PowerSample {
        PowerSample {
            per_core: per_core.to_vec(),
            uncore,
        }
    }

    #[test]
    fn chip_total_sums_cores_and_uncore() {
        let s = sample(&[10.0, 20.0], 5.0);
        assert_eq!(s.chip(), 35.0);
    }

    #[test]
    fn accumulator_integrates() {
        let mut e = ChipEnergy::new(2);
        e.add(&sample(&[10.0, 20.0], 5.0));
        e.add(&sample(&[30.0, 0.0], 0.0));
        assert_eq!(e.cycles, 2);
        assert_eq!(e.per_core, vec![40.0, 20.0]);
        assert_eq!(e.uncore, 5.0);
        assert_eq!(e.total, 65.0);
        assert_eq!(e.mean_power(), 32.5);
        assert_eq!(e.max_chip_cycle, 35.0);
    }

    #[test]
    fn stddev_of_constant_signal_is_zero() {
        let mut e = ChipEnergy::new(1);
        for _ in 0..100 {
            e.add(&sample(&[42.0], 0.0));
        }
        assert!(e.power_stddev() < 1e-9);
    }

    #[test]
    fn stddev_of_alternating_signal() {
        let mut e = ChipEnergy::new(1);
        for i in 0..1000 {
            e.add(&sample(&[if i % 2 == 0 { 0.0 } else { 10.0 }], 0.0));
        }
        assert!((e.power_stddev() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let e = ChipEnergy::new(4);
        assert_eq!(e.mean_power(), 0.0);
        assert_eq!(e.power_stddev(), 0.0);
    }
}
