//! Token-conservation auditing.

use crate::{RunEnd, RunMeta, SimObserver};

/// Checks simulator accounting invariants while a run executes,
/// panicking with context on the first violation (fail fast — a broken
/// invariant poisons every downstream number, so there is no point
/// finishing the run).
///
/// Checked every `stride` cycles:
/// * **per-cycle conservation** — the chip sample equals the sum of the
///   per-core samples plus the uncore share;
///
/// and at run end:
/// * **energy integral** — the simulator's accumulated energy equals
///   the audit's own integral of the chip samples it saw.
#[derive(Debug, Clone)]
pub struct AuditObserver {
    stride: u64,
    rel_tol: f64,
    benchmark: String,
    energy_integral: f64,
    checks: u64,
    violations_are_fatal: bool,
    violations: u64,
}

impl AuditObserver {
    /// Audit every `stride` cycles (0 is treated as 1) with a relative
    /// tolerance of 1e-9 per comparison.
    pub fn new(stride: u64) -> Self {
        AuditObserver {
            stride: stride.max(1),
            rel_tol: 1e-9,
            benchmark: String::new(),
            energy_integral: 0.0,
            checks: 0,
            violations_are_fatal: true,
            violations: 0,
        }
    }

    /// Count violations instead of panicking (for tests of the auditor
    /// itself).
    pub fn counting_only(mut self) -> Self {
        self.violations_are_fatal = false;
        self
    }

    /// Number of per-cycle checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of violations seen (only useful with
    /// [`AuditObserver::counting_only`]).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    fn close(&self, a: f64, b: f64) -> bool {
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= self.rel_tol * scale
    }

    fn violate(&mut self, msg: String) {
        if self.violations_are_fatal {
            panic!("{msg}");
        }
        self.violations += 1;
    }
}

impl SimObserver for AuditObserver {
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.benchmark = meta.benchmark.clone();
        self.energy_integral = 0.0;
        self.checks = 0;
        self.violations = 0;
    }

    fn on_cycle(&mut self, cycle: u64, per_core: &[f64], uncore: f64, chip: f64) {
        self.energy_integral += chip;
        if cycle.is_multiple_of(self.stride) {
            self.checks += 1;
            let sum: f64 = per_core.iter().sum::<f64>() + uncore;
            if !self.close(sum, chip) {
                let bench = self.benchmark.clone();
                self.violate(format!(
                    "token conservation violated at cycle {cycle} ({bench}): \
                     sum(per_core) + uncore = {sum}, chip sample = {chip}"
                ));
            }
        }
    }

    fn on_run_end(&mut self, end: &RunEnd) {
        if !self.close(self.energy_integral, end.energy_tokens) {
            let bench = self.benchmark.clone();
            let integral = self.energy_integral;
            self.violate(format!(
                "energy accumulator diverged from trace integral ({bench}): \
                 simulator total = {} tokens, audit integral = {integral} tokens \
                 over {} cycles",
                end.energy_tokens, end.cycles
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_run_passes() {
        let mut a = AuditObserver::new(2);
        a.on_run_start(&RunMeta::default());
        let mut total = 0.0;
        for cycle in 1..=100u64 {
            let per_core = [1.0, 2.0, 3.0];
            let uncore = 0.5;
            let chip = per_core.iter().sum::<f64>() + uncore;
            total += chip;
            a.on_cycle(cycle, &per_core, uncore, chip);
        }
        a.on_run_end(&RunEnd {
            cycles: 100,
            energy_tokens: total,
        });
        assert_eq!(a.checks(), 50);
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn conservation_violation_is_caught() {
        let mut a = AuditObserver::new(1).counting_only();
        a.on_run_start(&RunMeta::default());
        a.on_cycle(1, &[1.0, 2.0], 0.5, 99.0);
        assert_eq!(a.violations(), 1);
    }

    #[test]
    #[should_panic(expected = "token conservation violated")]
    fn violation_panics_with_context() {
        let mut a = AuditObserver::new(1);
        a.on_run_start(&RunMeta::default());
        a.on_cycle(7, &[1.0], 0.0, 5.0);
    }

    #[test]
    fn energy_divergence_is_caught() {
        let mut a = AuditObserver::new(1).counting_only();
        a.on_run_start(&RunMeta::default());
        a.on_cycle(1, &[1.0], 0.0, 1.0);
        a.on_run_end(&RunEnd {
            cycles: 1,
            energy_tokens: 2.0,
        });
        assert_eq!(a.violations(), 1);
    }
}
