//! Bounded event recording and Chrome `trace_event` export.

use crate::{MemPulse, Phase, RunMeta, SimObserver, SpinKind, ThrottleObs};
use serde::{json, Deserialize, Map, Serialize, Value};
use std::collections::VecDeque;

/// One recorded simulator event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Strided power sample (chip + uncore tokens for one cycle).
    CycleSample {
        /// Global cycle.
        cycle: u64,
        /// Chip total tokens this cycle.
        chip: f64,
        /// Uncore share of the total.
        uncore: f64,
    },
    /// A core's DVFS operating point changed.
    DvfsChange {
        /// Global cycle.
        cycle: u64,
        /// Core index.
        core: usize,
        /// New voltage (fraction of nominal).
        v: f64,
        /// New frequency (fraction of nominal).
        f: f64,
        /// Stall cycles charged for the transition.
        transition_cycles: u64,
    },
    /// A core's micro-architectural throttle changed.
    ThrottleChange {
        /// Global cycle.
        cycle: u64,
        /// Core index.
        core: usize,
        /// New throttle state.
        throttle: ThrottleObs,
    },
    /// A core entered a spin loop.
    SpinEnter {
        /// Global cycle.
        cycle: u64,
        /// Core index.
        core: usize,
        /// What it spins on.
        kind: SpinKind,
    },
    /// A core left a spin loop.
    SpinExit {
        /// Global cycle.
        cycle: u64,
        /// Core index.
        core: usize,
    },
    /// A memory request hit input-queue backpressure.
    MemRetry {
        /// Global cycle.
        cycle: u64,
        /// Core index.
        core: usize,
    },
    /// Memory-system activity for one cycle.
    MemPulse {
        /// Global cycle.
        cycle: u64,
        /// The deltas.
        pulse: crate::MemPulse,
    },
    /// Host nanoseconds per simulator phase, accumulated since the
    /// previous `PhaseTimes` event (indexed by [`Phase::index`]).
    PhaseTimes {
        /// Global cycle the window ended on.
        cycle: u64,
        /// Accumulated nanoseconds, one entry per [`Phase::ALL`].
        nanos: Vec<u64>,
    },
}

impl Event {
    /// The cycle this event happened on.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::CycleSample { cycle, .. }
            | Event::DvfsChange { cycle, .. }
            | Event::ThrottleChange { cycle, .. }
            | Event::SpinEnter { cycle, .. }
            | Event::SpinExit { cycle, .. }
            | Event::MemRetry { cycle, .. }
            | Event::MemPulse { cycle, .. } => cycle,
            Event::PhaseTimes { cycle, .. } => cycle,
        }
    }
}

/// A bounded ring buffer of [`Event`]s with Chrome-trace export.
///
/// Capacity is fixed at construction; once full, the **oldest** events
/// are dropped (and counted in [`EventRecorder::dropped`]), so a trace
/// always covers the tail of a run — usually the interesting part when
/// debugging why a run ended the way it did. Power samples are recorded
/// every `sample_stride` cycles to keep counter tracks light; mechanism
/// decisions, spin transitions and retries are recorded unconditionally.
#[derive(Debug, Clone)]
pub struct EventRecorder {
    meta: RunMeta,
    events: VecDeque<Event>,
    capacity: usize,
    sample_stride: u64,
    record_pulses: bool,
    dropped: u64,
    end_cycle: u64,
    phase_acc: [u64; Phase::COUNT],
    phase_dirty: bool,
}

impl EventRecorder {
    /// Recorder holding at most `capacity` events, sampling power every
    /// 64 cycles, with memory pulses off.
    pub fn new(capacity: usize) -> Self {
        EventRecorder {
            meta: RunMeta::default(),
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity: capacity.max(1),
            sample_stride: 64,
            record_pulses: false,
            dropped: 0,
            end_cycle: 0,
            phase_acc: [0; Phase::COUNT],
            phase_dirty: false,
        }
    }

    /// Emit the accumulated phase-time window as a `PhaseTimes` event
    /// (no-op when nothing accumulated since the last flush).
    fn flush_phase_times(&mut self, cycle: u64) {
        if self.phase_dirty {
            self.push(Event::PhaseTimes {
                cycle,
                nanos: self.phase_acc.to_vec(),
            });
            self.phase_acc = [0; Phase::COUNT];
            self.phase_dirty = false;
        }
    }

    /// Set the power-sample stride (1 = every cycle).
    pub fn with_sample_stride(mut self, stride: u64) -> Self {
        self.sample_stride = stride.max(1);
        self
    }

    /// Also record per-cycle memory pulses (high volume).
    pub fn with_mem_pulses(mut self) -> Self {
        self.record_pulses = true;
        self
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Record one event, evicting the oldest on overflow.
    pub fn push(&mut self, ev: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    fn ts_us(&self, cycle: u64) -> f64 {
        cycle as f64 * 1.0e6 / self.meta.freq_hz
    }

    /// Render the buffer as a Chrome `trace_event` JSON object
    /// (`chrome://tracing` / Perfetto "JSON" format): cores become
    /// threads of process 0, power and DVFS modes become counter
    /// tracks, mechanism decisions become instants, spin episodes
    /// become duration spans.
    pub fn chrome_trace(&self) -> Value {
        let mut events: Vec<Value> = Vec::with_capacity(self.events.len() + self.meta.n_cores + 2);
        events.push(metadata_event("process_name", 0, None, "ptb-sim"));
        for c in 0..self.meta.n_cores {
            events.push(metadata_event(
                "thread_name",
                0,
                Some(c),
                &format!("core {c}"),
            ));
        }
        // Spin spans must nest correctly even though the ring buffer may
        // have evicted an enter: track open spans per core.
        let mut open_spin: Vec<bool> = vec![false; self.meta.n_cores];
        for ev in &self.events {
            let ts = self.ts_us(ev.cycle());
            match ev {
                Event::CycleSample { chip, uncore, .. } => {
                    let mut args = Map::new();
                    args.insert("chip".into(), Value::F64(*chip));
                    args.insert("uncore".into(), Value::F64(*uncore));
                    events.push(counter_event("chip tokens", ts, args));
                }
                Event::DvfsChange {
                    core,
                    v,
                    f,
                    transition_cycles,
                    ..
                } => {
                    let mut args = Map::new();
                    args.insert("f".into(), Value::F64(*f));
                    events.push(counter_event(&format!("core {core} dvfs f"), ts, args));
                    let mut args = Map::new();
                    args.insert("v".into(), Value::F64(*v));
                    args.insert("f".into(), Value::F64(*f));
                    args.insert("transition_cycles".into(), Value::U64(*transition_cycles));
                    events.push(instant_event(
                        &format!("dvfs v={v:.2} f={f:.2}"),
                        ts,
                        *core,
                        args,
                    ));
                }
                Event::ThrottleChange { core, throttle, .. } => {
                    let mut args = Map::new();
                    args.insert(
                        "fetch_every".into(),
                        Value::U64(u64::from(throttle.fetch_every)),
                    );
                    events.push(instant_event(
                        &format!("throttle {}", throttle.label()),
                        ts,
                        *core,
                        args,
                    ));
                }
                Event::SpinEnter { core, kind, .. } => {
                    if *core < open_spin.len() && !open_spin[*core] {
                        open_spin[*core] = true;
                        events.push(span_event("B", kind.label(), ts, *core));
                    }
                }
                Event::SpinExit { core, .. } => {
                    if *core < open_spin.len() && open_spin[*core] {
                        open_spin[*core] = false;
                        events.push(span_event("E", "", ts, *core));
                    }
                }
                Event::MemRetry { core, .. } => {
                    events.push(instant_event(
                        "mem backpressure retry",
                        ts,
                        *core,
                        Map::new(),
                    ));
                }
                Event::MemPulse { pulse, .. } => {
                    let mut args = Map::new();
                    args.insert("l1_misses".into(), Value::U64(pulse.l1_misses));
                    args.insert("l2_misses".into(), Value::U64(pulse.l2_misses));
                    args.insert("invalidations".into(), Value::U64(pulse.invalidations));
                    args.insert("mem_accesses".into(), Value::U64(pulse.mem_accesses));
                    events.push(counter_event("mem events", ts, args));
                }
                Event::PhaseTimes { nanos, .. } => {
                    let mut args = Map::new();
                    for p in Phase::ALL {
                        args.insert(
                            p.name().into(),
                            Value::U64(nanos.get(p.index()).copied().unwrap_or(0)),
                        );
                    }
                    events.push(counter_event("host phase ns", ts, args));
                }
            }
        }
        // Close any span left open at the end of the buffer.
        let end_ts = self.ts_us(
            self.end_cycle
                .max(self.events.back().map(Event::cycle).unwrap_or(0)),
        );
        for (core, open) in open_spin.iter().enumerate() {
            if *open {
                events.push(span_event("E", "", end_ts, core));
            }
        }

        let mut other = Map::new();
        other.insert("benchmark".into(), Value::Str(self.meta.benchmark.clone()));
        other.insert("mechanism".into(), Value::Str(self.meta.mechanism.clone()));
        other.insert("n_cores".into(), Value::U64(self.meta.n_cores as u64));
        other.insert("budget_tokens".into(), Value::F64(self.meta.budget_tokens));
        other.insert("dropped_events".into(), Value::U64(self.dropped));

        let mut root = Map::new();
        root.insert("traceEvents".into(), Value::Array(events));
        root.insert("displayTimeUnit".into(), Value::Str("ms".into()));
        root.insert("otherData".into(), Value::Object(other));
        Value::Object(root)
    }

    /// [`EventRecorder::chrome_trace`] rendered to a JSON string.
    pub fn chrome_trace_json(&self) -> String {
        json::to_string(&self.chrome_trace())
    }
}

fn base_event(name: &str, ph: &str, ts: f64) -> Map {
    let mut m = Map::new();
    m.insert("name".into(), Value::Str(name.to_owned()));
    m.insert("ph".into(), Value::Str(ph.to_owned()));
    m.insert("pid".into(), Value::U64(0));
    m.insert("ts".into(), Value::F64(ts));
    m
}

fn metadata_event(name: &str, pid: u64, tid: Option<usize>, arg_name: &str) -> Value {
    let mut m = Map::new();
    m.insert("name".into(), Value::Str(name.to_owned()));
    m.insert("ph".into(), Value::Str("M".into()));
    m.insert("pid".into(), Value::U64(pid));
    if let Some(t) = tid {
        m.insert("tid".into(), Value::U64(t as u64));
    }
    let mut args = Map::new();
    args.insert("name".into(), Value::Str(arg_name.to_owned()));
    m.insert("args".into(), Value::Object(args));
    Value::Object(m)
}

fn counter_event(name: &str, ts: f64, args: Map) -> Value {
    let mut m = base_event(name, "C", ts);
    m.insert("args".into(), Value::Object(args));
    Value::Object(m)
}

fn instant_event(name: &str, ts: f64, core: usize, args: Map) -> Value {
    let mut m = base_event(name, "i", ts);
    m.insert("tid".into(), Value::U64(core as u64));
    m.insert("s".into(), Value::Str("t".into()));
    m.insert("args".into(), Value::Object(args));
    Value::Object(m)
}

fn span_event(ph: &str, name: &str, ts: f64, core: usize) -> Value {
    let mut m = base_event(name, ph, ts);
    m.insert("tid".into(), Value::U64(core as u64));
    Value::Object(m)
}

impl SimObserver for EventRecorder {
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.meta = meta.clone();
    }

    fn on_cycle(&mut self, cycle: u64, _per_core: &[f64], uncore: f64, chip: f64) {
        if cycle.is_multiple_of(self.sample_stride) {
            self.push(Event::CycleSample {
                cycle,
                chip,
                uncore,
            });
            self.flush_phase_times(cycle);
        }
    }

    fn on_dvfs_change(&mut self, cycle: u64, core: usize, v: f64, f: f64, transition_cycles: u64) {
        self.push(Event::DvfsChange {
            cycle,
            core,
            v,
            f,
            transition_cycles,
        });
    }

    fn on_throttle_change(&mut self, cycle: u64, core: usize, throttle: ThrottleObs) {
        self.push(Event::ThrottleChange {
            cycle,
            core,
            throttle,
        });
    }

    fn on_spin_enter(&mut self, cycle: u64, core: usize, kind: SpinKind) {
        self.push(Event::SpinEnter { cycle, core, kind });
    }

    fn on_spin_exit(&mut self, cycle: u64, core: usize) {
        self.push(Event::SpinExit { cycle, core });
    }

    fn on_mem_retry(&mut self, cycle: u64, core: usize) {
        self.push(Event::MemRetry { cycle, core });
    }

    fn on_mem_pulse(&mut self, cycle: u64, pulse: &MemPulse) {
        if self.record_pulses && !pulse.is_empty() {
            self.push(Event::MemPulse {
                cycle,
                pulse: *pulse,
            });
        }
    }

    fn on_phase_time(&mut self, phase: Phase, nanos: u64) {
        self.phase_acc[phase.index()] += nanos;
        self.phase_dirty = true;
    }

    fn on_run_end(&mut self, end: &crate::RunEnd) {
        self.end_cycle = end.cycles;
        self.flush_phase_times(end.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunEnd;

    fn meta(n: usize) -> RunMeta {
        RunMeta {
            benchmark: "test".into(),
            mechanism: "none".into(),
            n_cores: n,
            freq_hz: 3.0e9,
            budget_tokens: 100.0,
        }
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut r = EventRecorder::new(4).with_sample_stride(1);
        r.on_run_start(&meta(2));
        for cycle in 1..=10 {
            r.on_cycle(cycle, &[1.0, 2.0], 0.5, 3.5);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.events().next().unwrap().cycle(), 7);
    }

    #[test]
    fn chrome_trace_structure() {
        let mut r = EventRecorder::new(64).with_sample_stride(1);
        r.on_run_start(&meta(2));
        r.on_cycle(1, &[1.0, 2.0], 0.5, 3.5);
        r.on_spin_enter(2, 1, SpinKind::Lock);
        r.on_dvfs_change(3, 0, 0.9, 0.8, 60);
        r.on_throttle_change(
            3,
            0,
            ThrottleObs {
                fetch_every: 2,
                issue_width: usize::MAX,
                rob_cap: usize::MAX,
            },
        );
        r.on_spin_exit(4, 1);
        r.on_run_end(&RunEnd {
            cycles: 5,
            energy_tokens: 12.0,
        });
        let v = r.chrome_trace();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        // 1 process + 2 thread metadata + sample + B + 2 dvfs + throttle + E
        assert_eq!(evs.len(), 9);
        let phases: Vec<&str> = evs
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases, ["M", "M", "M", "C", "B", "C", "i", "i", "E"]);
        // Every non-metadata event carries a numeric ts.
        for e in evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() != Some("M"))
        {
            assert!(e.get("ts").unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn phase_times_flush_into_counter_track() {
        let mut r = EventRecorder::new(64).with_sample_stride(2);
        r.on_run_start(&meta(1));
        r.on_phase_time(Phase::MemTick, 300);
        r.on_phase_time(Phase::CoreTick, 700);
        r.on_cycle(1, &[1.0], 0.5, 1.5); // off-stride: no flush
        r.on_phase_time(Phase::CoreTick, 1_000);
        r.on_cycle(2, &[1.0], 0.5, 1.5); // strided: sample + flush
        r.on_run_end(&RunEnd {
            cycles: 3,
            energy_tokens: 0.0,
        });
        let times: Vec<&Event> = r
            .events()
            .filter(|e| matches!(e, Event::PhaseTimes { .. }))
            .collect();
        assert_eq!(times.len(), 1, "one flush at the strided sample");
        match times[0] {
            Event::PhaseTimes { cycle, nanos } => {
                assert_eq!(*cycle, 2);
                assert_eq!(nanos[Phase::MemTick.index()], 300);
                assert_eq!(nanos[Phase::CoreTick.index()], 1_700);
            }
            _ => unreachable!(),
        }
        let v = r.chrome_trace();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        let host = evs
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("host phase ns"))
            .expect("host phase counter track");
        let args = host.get("args").unwrap();
        assert_eq!(args.get("core_tick").unwrap().as_u64(), Some(1_700));
        assert_eq!(args.get("noc").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn dangling_spin_span_is_closed() {
        let mut r = EventRecorder::new(8);
        r.on_run_start(&meta(1));
        r.on_spin_enter(10, 0, SpinKind::Barrier);
        r.on_run_end(&RunEnd {
            cycles: 42,
            energy_tokens: 0.0,
        });
        let v = r.chrome_trace();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        let ends: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("E"))
            .collect();
        assert_eq!(ends.len(), 1);
        // Closed at the run-end timestamp, not the event's.
        let ts = ends[0].get("ts").unwrap().as_f64().unwrap();
        assert!((ts - 42.0 * 1.0e6 / 3.0e9).abs() < 1e-12);
    }
}
