//! Allocation telemetry: a counting wrapper around the system
//! allocator, behind the `alloc-telemetry` feature.
//!
//! Install it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ptb_obs::alloc::CountingAlloc = ptb_obs::alloc::CountingAlloc;
//! ```
//!
//! then bracket a region of interest with [`snapshot`] and diff via
//! [`AllocSnapshot::since`]. Counters are process-global relaxed
//! atomics: cheap enough to leave on (two fetch-adds per alloc), but
//! the numbers cover *all* threads, so single-thread the region you
//! want to attribute. The headline derived metric is allocs (and
//! bytes) per simulated kilocycle — the quantitative case for arena
//! allocation in the hot loop.

// The one unsafe impl in ptb-obs: a `GlobalAlloc` cannot be safe. The
// crate root switches `forbid(unsafe_code)` down to `deny` when this
// module is compiled in (see lib.rs), and the allow below scopes the
// exemption to exactly this impl.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` shim that counts allocations and bytes on
/// their way to [`System`].
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

#[allow(unsafe_code)]
// SAFETY: pure pass-through to `System`; the atomics touch no
// allocator state and the contract (layout validity, ownership of
// returned pointers) is exactly `System`'s.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Point-in-time allocator counters (process-global, all threads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations since process start.
    pub allocs: u64,
    /// Deallocations since process start.
    pub frees: u64,
    /// Bytes requested since process start (not live bytes).
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            frees: self.frees.saturating_sub(earlier.frees),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }

    /// Allocations per 1000 simulated cycles (0 when `cycles` is 0).
    pub fn allocs_per_kilocycle(&self, cycles: u64) -> f64 {
        per_kilocycle(self.allocs, cycles)
    }

    /// Requested bytes per 1000 simulated cycles (0 when `cycles` is 0).
    pub fn bytes_per_kilocycle(&self, cycles: u64) -> f64 {
        per_kilocycle(self.bytes, cycles)
    }
}

fn per_kilocycle(count: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        0.0
    } else {
        count as f64 * 1000.0 / cycles as f64
    }
}

/// Current counter values. Meaningful only when [`CountingAlloc`] is
/// installed as the global allocator; all-zero otherwise.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_and_rates() {
        let a = AllocSnapshot {
            allocs: 10,
            frees: 4,
            bytes: 4096,
        };
        let b = AllocSnapshot {
            allocs: 110,
            frees: 54,
            bytes: 104_496,
        };
        let d = b.since(&a);
        assert_eq!(d.allocs, 100);
        assert_eq!(d.frees, 50);
        assert_eq!(d.bytes, 100_400);
        assert!((d.allocs_per_kilocycle(50_000) - 2.0).abs() < 1e-12);
        assert!((d.bytes_per_kilocycle(50_000) - 2008.0).abs() < 1e-9);
        assert_eq!(d.allocs_per_kilocycle(0), 0.0);
    }

    #[test]
    fn snapshot_is_monotonic() {
        // Without the global allocator installed the counters stay 0;
        // with it they only grow. Either way `since` of a later
        // snapshot against an earlier one never underflows.
        let a = snapshot();
        let _v: Vec<u64> = (0..64).collect();
        let b = snapshot();
        let d = b.since(&a);
        assert!(d.allocs <= b.allocs);
    }
}
