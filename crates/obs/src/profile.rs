//! Wall-clock phase profiling.

use crate::{Phase, SimObserver};
use ptb_metrics::Table;
use std::collections::BTreeMap;

/// Accumulates wall-clock time per simulator phase (memory tick, core
/// tick, power sample, mechanism control), as measured by the simulator
/// when [`SimObserver::wants_phase_timing`] returns true.
///
/// The measurement itself costs a handful of `Instant::now()` calls per
/// simulated cycle, so enable it for profiling runs, not for
/// experiments whose wall-clock time matters.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    nanos: [u64; Phase::COUNT],
    samples: [u64; Phase::COUNT],
}

impl PhaseProfiler {
    /// Fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total nanoseconds attributed to `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Total measured nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Share of measured time spent in `phase` (0..=1; 0 if nothing
    /// was measured).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos(phase) as f64 / total as f64
        }
    }

    /// Flat `profile.<phase>_ms` map for `RunReport::extra_metrics`.
    pub fn as_map(&self) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        for p in Phase::ALL {
            m.insert(
                format!("profile.{}_ms", p.name()),
                self.nanos(p) as f64 / 1.0e6,
            );
        }
        m.insert("profile.total_ms".into(), self.total_nanos() as f64 / 1.0e6);
        m
    }

    /// Render as a `phase,total_ms,share_pct` table.
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["phase", "total_ms", "share_pct"]);
        for p in Phase::ALL {
            t.row(vec![
                p.name().to_owned(),
                format!("{:.3}", self.nanos(p) as f64 / 1.0e6),
                format!("{:.1}", self.share(p) * 100.0),
            ]);
        }
        t
    }

    /// One-line summary like
    /// `mem_tick 41.2% | core_tick 38.0% | power_sample 12.5% | mechanism 8.3% (total 1234 ms)`.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = Phase::ALL
            .iter()
            .map(|&p| format!("{} {:.1}%", p.name(), self.share(p) * 100.0))
            .collect();
        format!(
            "{} (total {:.0} ms)",
            parts.join(" | "),
            self.total_nanos() as f64 / 1.0e6
        )
    }
}

impl SimObserver for PhaseProfiler {
    fn wants_phase_timing(&self) -> bool {
        true
    }

    fn on_phase_time(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
        self.samples[phase.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_shares() {
        let mut p = PhaseProfiler::new();
        p.on_phase_time(Phase::MemTick, 300);
        p.on_phase_time(Phase::CoreTick, 600);
        p.on_phase_time(Phase::PowerSample, 50);
        p.on_phase_time(Phase::Mechanism, 50);
        p.on_phase_time(Phase::MemTick, 0);
        assert_eq!(p.total_nanos(), 1000);
        assert!((p.share(Phase::CoreTick) - 0.6).abs() < 1e-12);
        let m = p.as_map();
        assert!((m["profile.mem_tick_ms"] - 3.0e-4).abs() < 1e-15);
        assert!(p.summary().contains("core_tick 60.0%"));
    }

    #[test]
    fn empty_profile_is_quiet() {
        let p = PhaseProfiler::new();
        assert_eq!(p.share(Phase::MemTick), 0.0);
        assert!(p.wants_phase_timing());
    }
}
