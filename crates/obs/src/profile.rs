//! Wall-clock phase profiling.

use crate::{Phase, RunEnd, SimObserver};
use ptb_metrics::{Histogram, Table};
use std::collections::BTreeMap;
use std::time::Instant;

/// Upper edge of the per-sample latency histograms, in nanoseconds.
/// One phase of one simulated cycle rarely exceeds a few microseconds;
/// anything beyond the edge is clamped into the last bin, which is fine
/// for the p50/p95 questions the profiler answers.
const HIST_MAX_NANOS: f64 = 65_536.0;

/// Bins in the per-sample latency histograms (256 ns resolution).
const HIST_BINS: usize = 256;

/// Accumulates wall-clock time per simulator phase (NoC, memory tick,
/// core tick, power sample, mechanism control, observer delivery), as
/// measured by the simulator when [`SimObserver::wants_phase_timing`]
/// returns true.
///
/// Besides the flat per-phase totals fed by [`SimObserver::on_phase_time`],
/// the profiler keeps a [`Histogram`] of per-sample latencies for each
/// phase (so tails are visible, not just means) and offers a scoped
/// [`PhaseProfiler::enter`] / [`PhaseProfiler::exit`] API for code that
/// wants nested attribution: entering a phase while another is open
/// charges the parent its elapsed *self time* so far, so nested time is
/// never double-counted. Unbalanced `exit` calls (and frames still open
/// at run end) are tolerated and counted in
/// [`PhaseProfiler::unbalanced`].
///
/// The measurement itself costs a handful of `Instant::now()` calls per
/// simulated cycle, so enable it for profiling runs, not for
/// experiments whose wall-clock time matters.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    nanos: [u64; Phase::COUNT],
    samples: [u64; Phase::COUNT],
    hists: Vec<Histogram>,
    stack: Vec<(Phase, Instant)>,
    unbalanced: u64,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        PhaseProfiler {
            nanos: [0; Phase::COUNT],
            samples: [0; Phase::COUNT],
            hists: Phase::ALL
                .iter()
                .map(|_| Histogram::new(0.0, HIST_MAX_NANOS, HIST_BINS))
                .collect(),
            stack: Vec::new(),
            unbalanced: 0,
        }
    }
}

impl PhaseProfiler {
    /// Fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `nanos` spent in `phase` (one sample).
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
        self.samples[phase.index()] += 1;
        self.hists[phase.index()].record(nanos as f64);
    }

    /// Begin a scoped `phase` frame. If another frame is open, the
    /// parent is charged its self time so far (its clock restarts when
    /// this frame exits), so nesting attributes each nanosecond to
    /// exactly one phase.
    pub fn enter(&mut self, phase: Phase) {
        let now = Instant::now();
        if let Some((parent, started)) = self.stack.last_mut() {
            let elapsed = now.duration_since(*started).as_nanos() as u64;
            let parent = *parent;
            *started = now;
            self.record(parent, elapsed);
        }
        self.stack.push((phase, now));
    }

    /// End the innermost scoped frame, charging it the time since its
    /// `enter` (or since its last child exited). Returns the phase that
    /// was closed, or `None` on an unbalanced `exit` (which is counted,
    /// not panicked on).
    pub fn exit(&mut self) -> Option<Phase> {
        let now = Instant::now();
        match self.stack.pop() {
            Some((phase, started)) => {
                let elapsed = now.duration_since(started).as_nanos() as u64;
                self.record(phase, elapsed);
                if let Some((_, resumed)) = self.stack.last_mut() {
                    *resumed = now;
                }
                Some(phase)
            }
            None => {
                self.unbalanced += 1;
                None
            }
        }
    }

    /// Current scoped-frame nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Number of unbalanced frame events seen: `exit` with no open
    /// frame, plus frames still open when the run ended.
    pub fn unbalanced(&self) -> u64 {
        self.unbalanced
    }

    /// Total nanoseconds attributed to `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Number of samples recorded for `phase`.
    pub fn samples(&self, phase: Phase) -> u64 {
        self.samples[phase.index()]
    }

    /// Per-sample latency quantile (`q` in 0..=1) for `phase`, in
    /// nanoseconds, estimated from the phase's histogram (0 when no
    /// samples were recorded).
    pub fn quantile_nanos(&self, phase: Phase, q: f64) -> f64 {
        let h = &self.hists[phase.index()];
        if h.count() == 0 {
            0.0
        } else {
            h.quantile(q)
        }
    }

    /// Total measured nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Share of measured time spent in `phase` (0..=1; 0 if nothing
    /// was measured).
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos(phase) as f64 / total as f64
        }
    }

    /// Flat `profile.<phase>_ms` map for `RunReport::extra_metrics`.
    pub fn as_map(&self) -> BTreeMap<String, f64> {
        let mut m = BTreeMap::new();
        for p in Phase::ALL {
            m.insert(
                format!("profile.{}_ms", p.name()),
                self.nanos(p) as f64 / 1.0e6,
            );
        }
        m.insert("profile.total_ms".into(), self.total_nanos() as f64 / 1.0e6);
        if self.unbalanced > 0 {
            m.insert("profile.unbalanced_frames".into(), self.unbalanced as f64);
        }
        m
    }

    /// Render as a `phase,total_ms,share_pct,samples,p50_ns,p95_ns`
    /// table.
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &[
                "phase",
                "total_ms",
                "share_pct",
                "samples",
                "p50_ns",
                "p95_ns",
            ],
        );
        for p in Phase::ALL {
            t.row(vec![
                p.name().to_owned(),
                format!("{:.3}", self.nanos(p) as f64 / 1.0e6),
                format!("{:.1}", self.share(p) * 100.0),
                self.samples(p).to_string(),
                format!("{:.0}", self.quantile_nanos(p, 0.5)),
                format!("{:.0}", self.quantile_nanos(p, 0.95)),
            ]);
        }
        t
    }

    /// One-line summary like
    /// `noc 10.0% | mem_tick 31.2% | core_tick 38.0% | ... (total 1234 ms)`.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = Phase::ALL
            .iter()
            .map(|&p| format!("{} {:.1}%", p.name(), self.share(p) * 100.0))
            .collect();
        format!(
            "{} (total {:.0} ms)",
            parts.join(" | "),
            self.total_nanos() as f64 / 1.0e6
        )
    }
}

impl SimObserver for PhaseProfiler {
    fn wants_phase_timing(&self) -> bool {
        true
    }

    fn on_phase_time(&mut self, phase: Phase, nanos: u64) {
        self.record(phase, nanos);
    }

    fn on_run_end(&mut self, _end: &RunEnd) {
        // Frames left open at run end are unbalanced: close them so
        // their time is not lost, and count them.
        while !self.stack.is_empty() {
            self.unbalanced += 1;
            self.exit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_shares() {
        let mut p = PhaseProfiler::new();
        p.on_phase_time(Phase::MemTick, 300);
        p.on_phase_time(Phase::CoreTick, 600);
        p.on_phase_time(Phase::PowerSample, 50);
        p.on_phase_time(Phase::Mechanism, 50);
        p.on_phase_time(Phase::MemTick, 0);
        assert_eq!(p.total_nanos(), 1000);
        assert!((p.share(Phase::CoreTick) - 0.6).abs() < 1e-12);
        let m = p.as_map();
        assert!((m["profile.mem_tick_ms"] - 3.0e-4).abs() < 1e-15);
        assert!(p.summary().contains("core_tick 60.0%"));
    }

    #[test]
    fn empty_profile_is_quiet() {
        let p = PhaseProfiler::new();
        assert_eq!(p.share(Phase::MemTick), 0.0);
        assert!(p.wants_phase_timing());
    }

    #[test]
    fn quantiles_come_from_histograms() {
        let mut p = PhaseProfiler::new();
        for _ in 0..95 {
            p.record(Phase::CoreTick, 1_000);
        }
        for _ in 0..5 {
            p.record(Phase::CoreTick, 60_000);
        }
        assert_eq!(p.samples(Phase::CoreTick), 100);
        let p50 = p.quantile_nanos(Phase::CoreTick, 0.5);
        assert!((768.0..=1_536.0).contains(&p50), "p50 = {p50}");
        let p99 = p.quantile_nanos(Phase::CoreTick, 0.99);
        assert!(p99 >= 59_000.0, "p99 = {p99}");
        // Untouched phase reports 0, not NaN.
        assert_eq!(p.quantile_nanos(Phase::Noc, 0.95), 0.0);
    }

    #[test]
    fn nested_frames_attribute_self_time_once() {
        let mut p = PhaseProfiler::new();
        p.enter(Phase::CoreTick);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.enter(Phase::Observer); // parent charged up to here
        assert_eq!(p.depth(), 2);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(p.exit(), Some(Phase::Observer));
        assert_eq!(p.exit(), Some(Phase::CoreTick));
        assert_eq!(p.depth(), 0);
        assert_eq!(p.unbalanced(), 0);
        let core = p.nanos(Phase::CoreTick);
        let obs = p.nanos(Phase::Observer);
        assert!(core >= 1_000_000, "core self time = {core}");
        assert!(obs >= 1_000_000, "observer time = {obs}");
        // Self-time attribution: total is the sum of disjoint intervals,
        // so neither bucket contains the other's sleep.
        assert_eq!(p.total_nanos(), core + obs);
        // The parent phase was charged in two pieces (pre-child, post-child).
        assert_eq!(p.samples(Phase::CoreTick), 2);
        assert_eq!(p.samples(Phase::Observer), 1);
    }

    #[test]
    fn unbalanced_exit_is_counted_not_fatal() {
        let mut p = PhaseProfiler::new();
        assert_eq!(p.exit(), None);
        assert_eq!(p.unbalanced(), 1);
        assert_eq!(p.total_nanos(), 0);
    }

    #[test]
    fn open_frames_at_run_end_are_closed_and_counted() {
        use crate::{RunEnd, SimObserver};
        let mut p = PhaseProfiler::new();
        p.enter(Phase::Mechanism);
        p.enter(Phase::Observer);
        p.on_run_end(&RunEnd {
            cycles: 1,
            energy_tokens: 0.0,
        });
        assert_eq!(p.depth(), 0);
        assert_eq!(p.unbalanced(), 2);
        assert_eq!(p.samples(Phase::Mechanism) + p.samples(Phase::Observer), 3);
        assert_eq!(p.as_map()["profile.unbalanced_frames"], 2.0);
    }

    #[test]
    fn table_has_distribution_columns() {
        let mut p = PhaseProfiler::new();
        p.record(Phase::Noc, 500);
        let csv = p.to_table("profile").to_csv();
        assert!(csv.lines().nth(1).unwrap().contains("p95_ns"));
        assert!(csv.contains("noc,"));
    }
}
