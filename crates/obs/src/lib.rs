//! Zero-cost-when-off observability for the PTB simulator.
//!
//! The simulator's inner loop is hot (one iteration per global 3 GHz
//! reference cycle, tens of millions per run), so observability is
//! structured around a compile-time switch: [`SimObserver`] carries a
//! `const ENABLED` flag, every hook site in `ptb-core` is guarded by
//! `if O::ENABLED { ... }`, and the default [`NullObserver`] sets it to
//! `false` — monomorphisation removes the hook code entirely, so an
//! unobserved run pays nothing (verified by `obs_overhead` in
//! `crates/bench`).
//!
//! Concrete observers, composable through [`ObsStack`]:
//!
//! * [`EventRecorder`] — bounded ring buffer of structured [`Event`]s
//!   with Chrome `trace_event` JSON export (loadable in Perfetto or
//!   `chrome://tracing`): cores appear as tracks, mechanism decisions
//!   as instants, chip power and DVFS modes as counter tracks, spin
//!   episodes as duration spans.
//! * [`CounterRegistry`] — named counters/gauges fed by the hooks (and
//!   by user code), exportable as a `ptb_metrics::Table` CSV and
//!   mergeable into `RunReport::extra_metrics`.
//! * [`AuditObserver`] — checks token-conservation invariants every N
//!   cycles and the energy integral at run end, panicking with context
//!   on the first violation.
//! * [`PhaseProfiler`] — wall-clock time per simulator phase (NoC /
//!   memory tick / core tick / power sample / mechanism control /
//!   observer delivery), with per-sample latency histograms.
//!
//! With the `alloc-telemetry` feature, the [`alloc`] module adds a
//! counting global-allocator wrapper so binaries can report allocs and
//! bytes per simulated kilocycle. That module is the only unsafe code
//! in the crate (a `GlobalAlloc` impl cannot be safe), hence the
//! feature-switched lint below: `forbid` normally, `deny` with a scoped
//! `allow` when the feature is on.

#![cfg_attr(not(feature = "alloc-telemetry"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-telemetry", deny(unsafe_code))]
#![deny(missing_docs)]

#[cfg(feature = "alloc-telemetry")]
pub mod alloc;
mod audit;
mod counters;
mod profile;
mod recorder;
mod stack;

pub use audit::AuditObserver;
pub use counters::CounterRegistry;
pub use profile::PhaseProfiler;
pub use recorder::{Event, EventRecorder};
pub use stack::ObsStack;

use serde::{Deserialize, Serialize};

/// Immutable facts about a run, delivered once at start.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMeta {
    /// Benchmark name.
    pub benchmark: String,
    /// Power-management mechanism name.
    pub mechanism: String,
    /// Number of cores.
    pub n_cores: usize,
    /// Reference clock in Hz (converts cycles to wall time in traces).
    pub freq_hz: f64,
    /// Global chip power budget in tokens per cycle.
    pub budget_tokens: f64,
}

impl Default for RunMeta {
    fn default() -> Self {
        RunMeta {
            benchmark: String::new(),
            mechanism: String::new(),
            n_cores: 0,
            freq_hz: 3.0e9,
            budget_tokens: 0.0,
        }
    }
}

/// Final facts about a run, delivered once at end.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunEnd {
    /// Total global cycles simulated.
    pub cycles: u64,
    /// Total chip energy in tokens, as accumulated by the simulator.
    pub energy_tokens: f64,
}

/// What a core is spinning on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpinKind {
    /// Spinlock acquisition.
    Lock,
    /// Barrier wait.
    Barrier,
    /// Spinning in an unclassified context.
    Other,
}

impl SpinKind {
    /// Short label used in trace span names.
    pub fn label(self) -> &'static str {
        match self {
            SpinKind::Lock => "spin:lock",
            SpinKind::Barrier => "spin:barrier",
            SpinKind::Other => "spin",
        }
    }
}

/// Micro-architectural throttle state, as reported to observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThrottleObs {
    /// Fetch once every N cycles (1 = unthrottled).
    pub fetch_every: u32,
    /// Issue width cap (`usize::MAX` = unlimited).
    pub issue_width: usize,
    /// Usable ROB entries (`usize::MAX` = unlimited).
    pub rob_cap: usize,
}

impl ThrottleObs {
    /// Compact label like `fetch/2 issue<=3` for instants.
    pub fn label(&self) -> String {
        let mut s = format!("fetch/{}", self.fetch_every);
        if self.issue_width != usize::MAX {
            s.push_str(&format!(" issue<={}", self.issue_width));
        }
        if self.rob_cap != usize::MAX {
            s.push_str(&format!(" rob<={}", self.rob_cap));
        }
        s
    }
}

/// Per-cycle memory-system event deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemPulse {
    /// L1 accesses this cycle.
    pub l1_accesses: u64,
    /// L2 bank accesses this cycle.
    pub l2_accesses: u64,
    /// NoC flit-hops this cycle.
    pub noc_flit_hops: u64,
    /// Off-chip memory accesses this cycle.
    pub mem_accesses: u64,
    /// L1 misses this cycle.
    pub l1_misses: u64,
    /// L2 misses this cycle.
    pub l2_misses: u64,
    /// Coherence invalidations received this cycle.
    pub invalidations: u64,
}

impl MemPulse {
    /// True when nothing happened this cycle (such pulses are skipped).
    pub fn is_empty(&self) -> bool {
        *self == MemPulse::default()
    }
}

/// Simulator phases measured by [`PhaseProfiler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Interconnect advance: mesh routing plus delivery of arrived
    /// messages into the coherence controllers.
    Noc,
    /// Memory event wheel + L1 pipelines + response drain + RMW
    /// execution.
    MemTick,
    /// Frequency-scaled core ticks + memory request forwarding.
    CoreTick,
    /// Power sampling, energy/AoPB accounting, thermal step (net of
    /// observer-hook delivery, which is booked under
    /// [`Phase::Observer`]).
    PowerSample,
    /// Context accounting + mechanism control + action application.
    Mechanism,
    /// Observer-hook delivery cost (pulse assembly, `on_cycle` fan-out)
    /// — the overhead of observation itself, kept out of the simulator
    /// buckets so profiles stay honest.
    Observer,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 6;

    /// All phases, in loop order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Noc,
        Phase::MemTick,
        Phase::CoreTick,
        Phase::PowerSample,
        Phase::Mechanism,
        Phase::Observer,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Noc => "noc",
            Phase::MemTick => "mem_tick",
            Phase::CoreTick => "core_tick",
            Phase::PowerSample => "power_sample",
            Phase::Mechanism => "mechanism",
            Phase::Observer => "observer",
        }
    }

    /// Index into per-phase arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Noc => 0,
            Phase::MemTick => 1,
            Phase::CoreTick => 2,
            Phase::PowerSample => 3,
            Phase::Mechanism => 4,
            Phase::Observer => 5,
        }
    }
}

/// Hooks the simulator calls at interesting points of a run.
///
/// All hooks have no-op defaults; implement only what you need. Hook
/// sites in `ptb-core` are guarded by `if O::ENABLED`, so an observer
/// with `ENABLED = false` ([`NullObserver`]) compiles to nothing.
#[allow(unused_variables)]
pub trait SimObserver {
    /// Compile-time switch: when `false`, every hook site in the
    /// simulator is eliminated by constant folding.
    const ENABLED: bool = true;

    /// A run is starting.
    fn on_run_start(&mut self, meta: &RunMeta) {}

    /// Per-cycle power sample: per-core tokens, uncore tokens, and the
    /// chip total the simulator accounted.
    fn on_cycle(&mut self, cycle: u64, per_core: &[f64], uncore: f64, chip: f64) {}

    /// The mechanism changed a core's DVFS operating point; the core
    /// stalls for `transition_cycles` while the V/f ramp completes.
    fn on_dvfs_change(&mut self, cycle: u64, core: usize, v: f64, f: f64, transition_cycles: u64) {}

    /// The mechanism changed a core's micro-architectural throttle.
    fn on_throttle_change(&mut self, cycle: u64, core: usize, throttle: ThrottleObs) {}

    /// A core entered a spin loop.
    fn on_spin_enter(&mut self, cycle: u64, core: usize, kind: SpinKind) {}

    /// A core left a spin loop (or finished while spinning).
    fn on_spin_exit(&mut self, cycle: u64, core: usize) {}

    /// A core's memory request was rejected by a full input queue and
    /// will be retried next cycle (backpressure).
    fn on_mem_retry(&mut self, cycle: u64, core: usize) {}

    /// Memory-system activity deltas for this cycle (only called for
    /// non-empty pulses).
    fn on_mem_pulse(&mut self, cycle: u64, pulse: &MemPulse) {}

    /// Whether the simulator should measure wall-clock phase times and
    /// deliver them via [`SimObserver::on_phase_time`]. Checked once per
    /// run; timing costs ~6 `Instant::now()` calls per cycle when on.
    fn wants_phase_timing(&self) -> bool {
        false
    }

    /// Wall-clock nanoseconds just spent in `phase` (one cycle's worth).
    fn on_phase_time(&mut self, phase: Phase, nanos: u64) {}

    /// The run finished.
    fn on_run_end(&mut self, end: &RunEnd) {}
}

/// The default observer: all hooks disabled at compile time.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    const ENABLED: bool = false;
}

impl<O: SimObserver> SimObserver for &mut O {
    const ENABLED: bool = O::ENABLED;

    fn on_run_start(&mut self, meta: &RunMeta) {
        (**self).on_run_start(meta);
    }
    fn on_cycle(&mut self, cycle: u64, per_core: &[f64], uncore: f64, chip: f64) {
        (**self).on_cycle(cycle, per_core, uncore, chip);
    }
    fn on_dvfs_change(&mut self, cycle: u64, core: usize, v: f64, f: f64, transition_cycles: u64) {
        (**self).on_dvfs_change(cycle, core, v, f, transition_cycles);
    }
    fn on_throttle_change(&mut self, cycle: u64, core: usize, throttle: ThrottleObs) {
        (**self).on_throttle_change(cycle, core, throttle);
    }
    fn on_spin_enter(&mut self, cycle: u64, core: usize, kind: SpinKind) {
        (**self).on_spin_enter(cycle, core, kind);
    }
    fn on_spin_exit(&mut self, cycle: u64, core: usize) {
        (**self).on_spin_exit(cycle, core);
    }
    fn on_mem_retry(&mut self, cycle: u64, core: usize) {
        (**self).on_mem_retry(cycle, core);
    }
    fn on_mem_pulse(&mut self, cycle: u64, pulse: &MemPulse) {
        (**self).on_mem_pulse(cycle, pulse);
    }
    fn wants_phase_timing(&self) -> bool {
        (**self).wants_phase_timing()
    }
    fn on_phase_time(&mut self, phase: Phase, nanos: u64) {
        (**self).on_phase_time(phase, nanos);
    }
    fn on_run_end(&mut self, end: &RunEnd) {
        (**self).on_run_end(end);
    }
}

/// Fan-out to two observers (compose further by nesting tuples).
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn on_run_start(&mut self, meta: &RunMeta) {
        self.0.on_run_start(meta);
        self.1.on_run_start(meta);
    }
    fn on_cycle(&mut self, cycle: u64, per_core: &[f64], uncore: f64, chip: f64) {
        self.0.on_cycle(cycle, per_core, uncore, chip);
        self.1.on_cycle(cycle, per_core, uncore, chip);
    }
    fn on_dvfs_change(&mut self, cycle: u64, core: usize, v: f64, f: f64, transition_cycles: u64) {
        self.0.on_dvfs_change(cycle, core, v, f, transition_cycles);
        self.1.on_dvfs_change(cycle, core, v, f, transition_cycles);
    }
    fn on_throttle_change(&mut self, cycle: u64, core: usize, throttle: ThrottleObs) {
        self.0.on_throttle_change(cycle, core, throttle);
        self.1.on_throttle_change(cycle, core, throttle);
    }
    fn on_spin_enter(&mut self, cycle: u64, core: usize, kind: SpinKind) {
        self.0.on_spin_enter(cycle, core, kind);
        self.1.on_spin_enter(cycle, core, kind);
    }
    fn on_spin_exit(&mut self, cycle: u64, core: usize) {
        self.0.on_spin_exit(cycle, core);
        self.1.on_spin_exit(cycle, core);
    }
    fn on_mem_retry(&mut self, cycle: u64, core: usize) {
        self.0.on_mem_retry(cycle, core);
        self.1.on_mem_retry(cycle, core);
    }
    fn on_mem_pulse(&mut self, cycle: u64, pulse: &MemPulse) {
        self.0.on_mem_pulse(cycle, pulse);
        self.1.on_mem_pulse(cycle, pulse);
    }
    fn wants_phase_timing(&self) -> bool {
        self.0.wants_phase_timing() || self.1.wants_phase_timing()
    }
    fn on_phase_time(&mut self, phase: Phase, nanos: u64) {
        self.0.on_phase_time(phase, nanos);
        self.1.on_phase_time(phase, nanos);
    }
    fn on_run_end(&mut self, end: &RunEnd) {
        self.0.on_run_end(end);
        self.1.on_run_end(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled<O: SimObserver>() -> bool {
        O::ENABLED
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!enabled::<NullObserver>());
        assert!(!enabled::<&mut NullObserver>());
        assert!(!enabled::<(NullObserver, NullObserver)>());
        assert!(enabled::<(NullObserver, CounterRegistry)>());
    }

    #[test]
    fn phase_index_round_trips() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn throttle_label_omits_unlimited_parts() {
        let t = ThrottleObs {
            fetch_every: 2,
            issue_width: usize::MAX,
            rob_cap: usize::MAX,
        };
        assert_eq!(t.label(), "fetch/2");
        let t = ThrottleObs {
            fetch_every: 3,
            issue_width: 2,
            rob_cap: 64,
        };
        assert_eq!(t.label(), "fetch/3 issue<=2 rob<=64");
    }
}
