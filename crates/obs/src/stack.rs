//! Runtime-composable observer stack.

use crate::{
    AuditObserver, CounterRegistry, EventRecorder, MemPulse, Phase, PhaseProfiler, RunEnd, RunMeta,
    SimObserver, SpinKind, ThrottleObs,
};
use std::collections::BTreeMap;

/// A runtime-selectable bundle of the concrete observers, for callers
/// (CLIs) that decide from flags which ones to enable.
///
/// `ENABLED` is `true` — use this type only when at least one component
/// is on; pass [`crate::NullObserver`] for unobserved runs so the hook
/// code compiles out entirely.
#[derive(Debug, Default)]
pub struct ObsStack {
    /// Event ring buffer + Chrome trace export, when tracing.
    pub recorder: Option<EventRecorder>,
    /// Named counters, when collecting metrics.
    pub counters: Option<CounterRegistry>,
    /// Invariant checks, when auditing.
    pub audit: Option<AuditObserver>,
    /// Wall-clock phase profile, when profiling.
    pub profiler: Option<PhaseProfiler>,
}

impl ObsStack {
    /// Empty stack; add components with the `with_*` builders.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach an [`EventRecorder`] with `capacity` events.
    pub fn with_recorder(mut self, capacity: usize) -> Self {
        self.recorder = Some(EventRecorder::new(capacity));
        self
    }

    /// Attach a [`CounterRegistry`].
    pub fn with_counters(mut self) -> Self {
        self.counters = Some(CounterRegistry::new());
        self
    }

    /// Attach an [`AuditObserver`] checking every `stride` cycles.
    pub fn with_audit(mut self, stride: u64) -> Self {
        self.audit = Some(AuditObserver::new(stride));
        self
    }

    /// Attach a [`PhaseProfiler`].
    pub fn with_profiler(mut self) -> Self {
        self.profiler = Some(PhaseProfiler::new());
        self
    }

    /// True when no component is attached (prefer
    /// [`crate::NullObserver`] then).
    pub fn is_empty(&self) -> bool {
        self.recorder.is_none()
            && self.counters.is_none()
            && self.audit.is_none()
            && self.profiler.is_none()
    }

    /// Merge everything this stack measured into a flat metric map
    /// (e.g. `RunReport::extra_metrics`): all counters, the phase
    /// profile, and recorder occupancy.
    pub fn merge_extra_metrics(&self, into: &mut BTreeMap<String, f64>) {
        if let Some(c) = &self.counters {
            for (k, v) in c.as_map() {
                into.insert(k.clone(), *v);
            }
        }
        if let Some(p) = &self.profiler {
            into.extend(p.as_map());
        }
        if let Some(r) = &self.recorder {
            into.insert("obs.events_recorded".into(), r.len() as f64);
            into.insert("obs.events_dropped".into(), r.dropped() as f64);
        }
        if let Some(a) = &self.audit {
            into.insert("obs.audit_checks".into(), a.checks() as f64);
        }
    }
}

impl SimObserver for ObsStack {
    fn on_run_start(&mut self, meta: &RunMeta) {
        if let Some(o) = &mut self.recorder {
            o.on_run_start(meta);
        }
        if let Some(o) = &mut self.counters {
            o.on_run_start(meta);
        }
        if let Some(o) = &mut self.audit {
            o.on_run_start(meta);
        }
        if let Some(o) = &mut self.profiler {
            o.on_run_start(meta);
        }
    }

    fn on_cycle(&mut self, cycle: u64, per_core: &[f64], uncore: f64, chip: f64) {
        if let Some(o) = &mut self.recorder {
            o.on_cycle(cycle, per_core, uncore, chip);
        }
        if let Some(o) = &mut self.counters {
            o.on_cycle(cycle, per_core, uncore, chip);
        }
        if let Some(o) = &mut self.audit {
            o.on_cycle(cycle, per_core, uncore, chip);
        }
    }

    fn on_dvfs_change(&mut self, cycle: u64, core: usize, v: f64, f: f64, transition_cycles: u64) {
        if let Some(o) = &mut self.recorder {
            o.on_dvfs_change(cycle, core, v, f, transition_cycles);
        }
        if let Some(o) = &mut self.counters {
            o.on_dvfs_change(cycle, core, v, f, transition_cycles);
        }
    }

    fn on_throttle_change(&mut self, cycle: u64, core: usize, throttle: ThrottleObs) {
        if let Some(o) = &mut self.recorder {
            o.on_throttle_change(cycle, core, throttle);
        }
        if let Some(o) = &mut self.counters {
            o.on_throttle_change(cycle, core, throttle);
        }
    }

    fn on_spin_enter(&mut self, cycle: u64, core: usize, kind: SpinKind) {
        if let Some(o) = &mut self.recorder {
            o.on_spin_enter(cycle, core, kind);
        }
        if let Some(o) = &mut self.counters {
            o.on_spin_enter(cycle, core, kind);
        }
    }

    fn on_spin_exit(&mut self, cycle: u64, core: usize) {
        if let Some(o) = &mut self.recorder {
            o.on_spin_exit(cycle, core);
        }
        if let Some(o) = &mut self.counters {
            o.on_spin_exit(cycle, core);
        }
    }

    fn on_mem_retry(&mut self, cycle: u64, core: usize) {
        if let Some(o) = &mut self.recorder {
            o.on_mem_retry(cycle, core);
        }
        if let Some(o) = &mut self.counters {
            o.on_mem_retry(cycle, core);
        }
    }

    fn on_mem_pulse(&mut self, cycle: u64, pulse: &MemPulse) {
        if let Some(o) = &mut self.recorder {
            o.on_mem_pulse(cycle, pulse);
        }
        if let Some(o) = &mut self.counters {
            o.on_mem_pulse(cycle, pulse);
        }
    }

    fn wants_phase_timing(&self) -> bool {
        self.profiler.is_some()
    }

    fn on_phase_time(&mut self, phase: Phase, nanos: u64) {
        if let Some(o) = &mut self.recorder {
            o.on_phase_time(phase, nanos);
        }
        if let Some(o) = &mut self.profiler {
            o.on_phase_time(phase, nanos);
        }
    }

    fn on_run_end(&mut self, end: &RunEnd) {
        if let Some(o) = &mut self.recorder {
            o.on_run_end(end);
        }
        if let Some(o) = &mut self.counters {
            o.on_run_end(end);
        }
        if let Some(o) = &mut self.audit {
            o.on_run_end(end);
        }
        if let Some(o) = &mut self.profiler {
            o.on_run_end(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stack_reports_empty() {
        assert!(ObsStack::new().is_empty());
        assert!(!ObsStack::new().with_counters().is_empty());
    }

    #[test]
    fn stack_fans_out_and_merges() {
        let mut s = ObsStack::new()
            .with_recorder(16)
            .with_counters()
            .with_audit(1)
            .with_profiler();
        s.on_run_start(&RunMeta::default());
        s.on_cycle(1, &[1.0, 2.0], 0.25, 3.25);
        s.on_dvfs_change(2, 0, 0.9, 0.8, 60);
        s.on_phase_time(Phase::CoreTick, 500);
        s.on_run_end(&RunEnd {
            cycles: 2,
            energy_tokens: 3.25,
        });
        let mut m = BTreeMap::new();
        s.merge_extra_metrics(&mut m);
        assert_eq!(m["mech.dvfs_transitions"], 1.0);
        assert_eq!(m["obs.audit_checks"], 1.0);
        assert!(m["obs.events_recorded"] >= 1.0);
        assert!(m.contains_key("profile.core_tick_ms"));
        assert!(s.wants_phase_timing());
    }
}
