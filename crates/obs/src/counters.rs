//! Named counters and gauges fed by observer hooks.

use crate::{MemPulse, RunEnd, RunMeta, SimObserver, SpinKind, ThrottleObs};
use ptb_metrics::Table;
use std::collections::BTreeMap;

/// A registry of named counters (monotonic sums) and gauges (last
/// value), keyed by dotted names like `mech.dvfs_transitions`.
///
/// As a [`SimObserver`] it counts every mechanism decision, spin
/// transition, backpressure retry and memory event of a run; user code
/// can add its own series with [`CounterRegistry::add`] /
/// [`CounterRegistry::set`]. Export as a `ptb_metrics::Table` (CSV) or
/// merge into `RunReport::extra_metrics` via the map view.
#[derive(Debug, Clone, Default)]
pub struct CounterRegistry {
    values: BTreeMap<String, f64>,
}

impl CounterRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (creating it at 0).
    pub fn add(&mut self, name: &str, delta: f64) {
        *self.values.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// Increment counter `name` by 1.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1.0);
    }

    /// Set gauge `name` to `value`, overwriting.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Current value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// All series, sorted by name.
    pub fn as_map(&self) -> &BTreeMap<String, f64> {
        &self.values
    }

    /// Fold another registry into this one: counters accumulate
    /// (`add`), so merging per-run registries — or the farm's `farm.*`
    /// outcome counters — yields totals. Series that only exist in
    /// `other` are created.
    pub fn merge(&mut self, other: &CounterRegistry) {
        for (name, value) in other.as_map() {
            self.add(name, *value);
        }
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no series exist.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Render as a two-column `counter,value` table (CSV via
    /// `Table::to_csv`).
    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["counter", "value"]);
        for (name, value) in &self.values {
            t.row(vec![name.clone(), format_value(*value)]);
        }
        t
    }
}

/// Integral counters print without a fractional part.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

impl SimObserver for CounterRegistry {
    fn on_run_start(&mut self, meta: &RunMeta) {
        self.set("run.n_cores", meta.n_cores as f64);
        self.set("run.budget_tokens", meta.budget_tokens);
    }

    fn on_dvfs_change(
        &mut self,
        _cycle: u64,
        _core: usize,
        _v: f64,
        _f: f64,
        transition_cycles: u64,
    ) {
        self.inc("mech.dvfs_transitions");
        self.add(
            "mech.dvfs_transition_stall_cycles",
            transition_cycles as f64,
        );
    }

    fn on_throttle_change(&mut self, _cycle: u64, _core: usize, _throttle: ThrottleObs) {
        self.inc("mech.throttle_changes");
    }

    fn on_spin_enter(&mut self, _cycle: u64, _core: usize, kind: SpinKind) {
        self.inc("sync.spin_episodes");
        match kind {
            SpinKind::Lock => self.inc("sync.spin_episodes_lock"),
            SpinKind::Barrier => self.inc("sync.spin_episodes_barrier"),
            SpinKind::Other => {}
        }
    }

    fn on_mem_retry(&mut self, _cycle: u64, _core: usize) {
        self.inc("mem.backpressure_retries");
    }

    fn on_mem_pulse(&mut self, _cycle: u64, pulse: &MemPulse) {
        self.add("mem.l1_misses", pulse.l1_misses as f64);
        self.add("mem.l2_misses", pulse.l2_misses as f64);
        self.add("mem.invalidations", pulse.invalidations as f64);
        self.add("mem.accesses", pulse.mem_accesses as f64);
    }

    fn on_run_end(&mut self, end: &RunEnd) {
        self.set("run.cycles", end.cycles as f64);
        self.set("run.energy_tokens", end.energy_tokens);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_hook_traffic() {
        let mut c = CounterRegistry::new();
        c.on_dvfs_change(10, 0, 0.9, 0.8, 60);
        c.on_dvfs_change(20, 1, 1.0, 1.0, 60);
        c.on_spin_enter(30, 0, SpinKind::Lock);
        c.on_mem_retry(31, 2);
        c.on_mem_pulse(
            32,
            &MemPulse {
                l1_misses: 3,
                invalidations: 1,
                ..MemPulse::default()
            },
        );
        assert_eq!(c.get("mech.dvfs_transitions"), Some(2.0));
        assert_eq!(c.get("mech.dvfs_transition_stall_cycles"), Some(120.0));
        assert_eq!(c.get("sync.spin_episodes_lock"), Some(1.0));
        assert_eq!(c.get("mem.backpressure_retries"), Some(1.0));
        assert_eq!(c.get("mem.l1_misses"), Some(3.0));
    }

    #[test]
    fn merge_accumulates_and_creates() {
        let mut a = CounterRegistry::new();
        a.add("x", 2.0);
        let mut b = CounterRegistry::new();
        b.add("x", 3.0);
        b.add("farm.hits", 7.0);
        a.merge(&b);
        assert_eq!(a.get("x"), Some(5.0));
        assert_eq!(a.get("farm.hits"), Some(7.0));
    }

    #[test]
    fn merge_adds_gauges_too_by_design() {
        // `merge` is additive for every series, including ones written
        // with `set`: a gauge colliding across registries sums. Callers
        // that want last-writer-wins must `set` after merging — this
        // test pins that contract.
        let mut a = CounterRegistry::new();
        a.set("run.n_cores", 16.0);
        let mut b = CounterRegistry::new();
        b.set("run.n_cores", 16.0);
        a.merge(&b);
        assert_eq!(a.get("run.n_cores"), Some(32.0));
        a.set("run.n_cores", 16.0);
        assert_eq!(a.get("run.n_cores"), Some(16.0));
    }

    #[test]
    fn merge_is_commutative_and_ignores_empty() {
        let mut a = CounterRegistry::new();
        a.add("x", 1.0);
        a.add("only_a", 4.0);
        let mut b = CounterRegistry::new();
        b.add("x", 2.0);
        b.add("only_b", 8.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.as_map(), ba.as_map());
        assert_eq!(ab.get("x"), Some(3.0));
        assert_eq!(ab.get("only_a"), Some(4.0));
        assert_eq!(ab.get("only_b"), Some(8.0));

        let before = ab.as_map().clone();
        ab.merge(&CounterRegistry::new());
        assert_eq!(ab.as_map(), &before);
    }

    #[test]
    fn merge_self_copy_doubles() {
        let mut a = CounterRegistry::new();
        a.add("x", 2.5);
        let snapshot = a.clone();
        a.merge(&snapshot);
        assert_eq!(a.get("x"), Some(5.0));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn table_is_sorted_and_csv_ready() {
        let mut c = CounterRegistry::new();
        c.set("b.gauge", 1.5);
        c.inc("a.count");
        let t = c.to_table("counters");
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# counters");
        assert_eq!(lines[1], "counter,value");
        assert!(lines[2].starts_with("a.count,1"));
        assert!(lines[3].starts_with("b.gauge,1.5"));
    }
}
