#!/usr/bin/env bash
# Regenerates every paper artefact. PTB_SCALE=small is the recorded scale.
#
# Runs are incremental: every simulated point is cached in the ptb-farm
# result store (default target/farm; override with PTB_FARM_DIR, disable
# with PTB_NO_CACHE=1), so a rerun only simulates points whose config
# changed, and a killed run resumes where it left off (`farm_ctl resume`).
#
# Failure semantics: by default every binary runs fail-fast and this
# script stops at the first broken figure (set -e), exiting nonzero.
# With KEEP_GOING=1 each binary quarantines failed points to the farm's
# failed.jsonl, emits partial artefacts (dropped points are named in a
# `# dropped:` footer), and the script runs every figure before exiting
# nonzero if anything was quarantined.
set -euo pipefail
cd /root/repo

export PTB_SCALE="${PTB_SCALE:-small}" PTB_OUT="${PTB_OUT:-target/figures}" PTB_JOBS="${PTB_JOBS:-1}"
FARM_DIR="${PTB_FARM_DIR:-target/farm}"
B=./target/release

FLAGS=()
if [ "${KEEP_GOING:-0}" != "0" ]; then
    FLAGS+=(--keep-going)
fi

cleanup() {
    # Unpublished store temporaries (crash or injected-fault debris).
    # Published entries and the journal are left untouched: they are
    # exactly what `farm_ctl resume` needs.
    find "$FARM_DIR" -name '.*.tmp' -delete 2>/dev/null || true
}
on_err() {
    echo "run_experiments: FAILED (see above). The farm journal is intact:" >&2
    echo "  $B/farm_ctl resume    # re-run exactly the unfinished/failed jobs" >&2
    if [ -f "$FARM_DIR/failed.jsonl" ]; then
        echo "  $B/sim_check --replay $FARM_DIR/failed.jsonl   # oracle-check the failures" >&2
    fi
}
trap cleanup EXIT
trap on_err ERR

rc=0
run() {
    # Under KEEP_GOING, record failures but keep producing artefacts.
    if [ "${KEEP_GOING:-0}" != "0" ]; then
        "$@" "${FLAGS[@]}" || rc=1
    else
        "$@"
    fi
}

run "$B/show_config"
run "$B/tdp_packing"
run "$B/fig07_token_flow"
run "$B/fig06_spin_trace"
run "$B/fig05_power_trace"
run "$B/fig02_naive_budget"
run "$B/fig03_breakdown"
run "$B/fig04_spin_power"
run "$B/fig10_detail_toall"
run "$B/fig11_detail_toone"
run "$B/fig12_dynamic"
run "$B/fig13_performance"
run "$B/fig09_scaling"
run "$B/fig14_relaxed"
run "$B/ext_future_work"

if [ -f "$FARM_DIR/failed.jsonl" ]; then
    echo "run_experiments: $(wc -l < "$FARM_DIR/failed.jsonl") quarantined job(s) in $FARM_DIR/failed.jsonl" >&2
    rc=1
fi
if [ "$rc" -ne 0 ]; then
    exit "$rc"
fi
echo ALL_FIGURES_DONE
