#!/bin/sh
# Regenerates every paper artefact. PTB_SCALE=small is the recorded scale.
#
# Runs are incremental: every simulated point is cached in the ptb-farm
# result store (default target/farm; override with PTB_FARM_DIR, disable
# with PTB_NO_CACHE=1), so a rerun only simulates points whose config
# changed, and a killed run resumes where it left off (`farm_ctl resume`).
set -x
cd /root/repo
export PTB_SCALE=small PTB_OUT=target/figures PTB_JOBS=1
B=./target/release
$B/show_config
$B/tdp_packing
$B/fig07_token_flow
$B/fig06_spin_trace
$B/fig05_power_trace
$B/fig02_naive_budget
$B/fig03_breakdown
$B/fig04_spin_power
$B/fig10_detail_toall
$B/fig11_detail_toone
$B/fig12_dynamic
$B/fig13_performance
$B/fig09_scaling
$B/fig14_relaxed
$B/ext_future_work
echo ALL_FIGURES_DONE
