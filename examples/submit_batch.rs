//! Drive a running `ptb_serve` instance end to end — the CI
//! `serve-smoke` client.
//!
//! ```text
//! cargo run --release -p ptb-serve --example submit_batch -- --addr 127.0.0.1:7878
//! ```
//!
//! Submits a two-job batch (fft + radix, 2 cores, test scale), polls
//! the batch to completion, fetches both reports and byte-compares
//! them against direct in-process simulations, then re-submits the
//! identical batch and asserts every job is answered `cached` — the
//! store round-trip is lossless and the dedup path does no work twice.

use ptb_core::SimConfig;
use ptb_farm::FarmJob;
use ptb_serve::http_call;
use ptb_workloads::{Benchmark, Scale};
use serde::{json, Map, Serialize, Value};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn jobs() -> Vec<FarmJob> {
    [Benchmark::Fft, Benchmark::Radix]
        .into_iter()
        .map(|bench| {
            FarmJob::new(
                bench,
                SimConfig {
                    n_cores: 2,
                    scale: Scale::Test,
                    ..SimConfig::default()
                },
            )
        })
        .collect()
}

fn submit(addr: SocketAddr, jobs: &[FarmJob]) -> Value {
    let mut body = Map::new();
    body.insert(
        "jobs".into(),
        Value::Array(jobs.iter().map(|j| j.to_value()).collect()),
    );
    let (status, resp) = http_call(
        addr,
        "POST",
        "/v1/batches",
        Some(&json::to_string(&Value::Object(body))),
    )
    .expect("submit");
    assert_eq!(status, 200, "submit failed: {resp}");
    json::parse(&resp).expect("submit response JSON")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr: SocketAddr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .expect("usage: submit_batch --addr HOST:PORT")
        .parse()
        .expect("parse --addr");

    let jobs = jobs();

    // Submit and poll the batch to completion.
    let first = submit(addr, &jobs);
    let batch_id = first
        .as_object()
        .and_then(|o| o.get("batch"))
        .and_then(Value::as_str)
        .expect("batch id")
        .to_owned();
    println!("submitted batch {batch_id} ({} jobs)", jobs.len());
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) =
            http_call(addr, "GET", &format!("/v1/batches/{batch_id}"), None).expect("poll");
        assert_eq!(status, 200, "poll failed: {body}");
        let v = json::parse(&body).expect("poll JSON");
        let done = v
            .as_object()
            .and_then(|o| o.get("done"))
            .and_then(Value::as_bool)
            .unwrap_or(false);
        if done {
            break;
        }
        assert!(Instant::now() < deadline, "batch did not settle in time");
        std::thread::sleep(Duration::from_millis(200));
    }

    // Served reports must be byte-identical to direct simulations.
    for job in &jobs {
        let key = job.key();
        let (status, served) =
            http_call(addr, "GET", &format!("/v1/reports/{key}"), None).expect("fetch report");
        assert_eq!(status, 200, "report fetch failed: {served}");
        let direct = json::to_string(&job.simulate().to_value());
        assert_eq!(
            served,
            direct,
            "served report for {} differs from a direct run",
            job.label()
        );
        println!(
            "report {} … byte-identical ({} bytes)",
            &key[..12],
            served.len()
        );
    }

    // Re-submitting the identical batch must be answered from cache.
    let second = submit(addr, &jobs);
    let resolved = second
        .as_object()
        .and_then(|o| o.get("jobs"))
        .and_then(|v| v.as_array().cloned())
        .expect("resolved jobs");
    for r in &resolved {
        let disposition = r
            .as_object()
            .and_then(|o| o.get("disposition"))
            .and_then(Value::as_str)
            .unwrap_or("?");
        assert_eq!(
            disposition, "cached",
            "re-submit was not a cache hit: {r:?}"
        );
    }
    println!("re-submit: {} / {} cached", resolved.len(), jobs.len());
    println!("submit_batch OK");
}
