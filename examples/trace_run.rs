//! Observability tour: run one benchmark under PTB with the full
//! observer stack attached — event recorder, counter registry, invariant
//! audit and phase profiler — then write a Chrome/Perfetto trace and
//! print the counters the run produced.
//!
//! ```sh
//! cargo run --release -p ptb-core --example trace_run
//! # then load /tmp/ptb_trace.json in https://ui.perfetto.dev
//! ```

use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
use ptb_obs::ObsStack;
use ptb_workloads::{Benchmark, Scale};

fn main() {
    let cfg = SimConfig {
        n_cores: 4,
        scale: Scale::Test,
        budget_frac: 0.5,
        mechanism: MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::Dynamic,
            relax: 0.0,
        },
        ..SimConfig::default()
    };

    // Every component on: a bounded event ring (tracing), named
    // counters, a conservation audit every 64 cycles, and wall-clock
    // phase timing. Unobserved runs should call `run` instead, which
    // uses `NullObserver` and compiles all of this away.
    let mut stack = ObsStack::new()
        .with_recorder(1 << 20)
        .with_counters()
        .with_audit(64)
        .with_profiler();

    let mut report = Simulation::new(cfg)
        .run_observed(Benchmark::Fft, &mut stack)
        .expect("simulation failed");
    stack.merge_extra_metrics(&mut report.extra_metrics);

    println!(
        "{} / {} on {} cores: {} cycles, {:.0} tokens",
        report.benchmark, report.mechanism, report.n_cores, report.cycles, report.energy_tokens
    );

    let recorder = stack.recorder.as_ref().expect("recorder attached");
    let path = std::env::temp_dir().join("ptb_trace.json");
    std::fs::write(&path, recorder.chrome_trace_json()).expect("write trace");
    println!(
        "wrote {} trace events ({} dropped) to {}",
        recorder.len(),
        recorder.dropped(),
        path.display()
    );

    let profiler = stack.profiler.as_ref().expect("profiler attached");
    println!("phase profile: {}", profiler.summary());

    println!("counters:");
    for (name, value) in stack.counters.as_ref().expect("counters").as_map() {
        println!("  {name:<36} {value}");
    }
}
