//! Budget sweep: how tight can the power constraint get before PTB stops
//! delivering? Sweeps the global budget from 40 % to 90 % of peak on a
//! lock-heavy workload and reports energy / accuracy / performance at each
//! point — the kind of study a packaging team would run before committing
//! to a cheaper thermal solution (paper §I / §IV.D motivation).
//!
//! ```sh
//! cargo run --release -p ptb-core --example budget_sweep
//! ```

use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
use ptb_workloads::{Benchmark, Scale};

fn main() {
    let bench = Benchmark::Waternsq;
    let n_cores = 4;
    println!("budget sweep on {bench} ({n_cores} cores, PTB+2level/Dynamic)\n");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>10}  {:>10}",
        "budget%", "energy (J)", "AoPB (J)", "cycles", "over-budget%"
    );
    let mut baseline_cycles = None;
    for budget_pct in [90, 80, 70, 60, 50, 40] {
        let cfg = SimConfig {
            n_cores,
            scale: Scale::Test,
            budget_frac: budget_pct as f64 / 100.0,
            mechanism: MechanismKind::PtbTwoLevel {
                policy: PtbPolicy::Dynamic,
                relax: 0.0,
            },
            ..SimConfig::default()
        };
        let r = Simulation::new(cfg).run(bench).expect("run");
        let base = *baseline_cycles.get_or_insert(r.cycles);
        println!(
            "{:>8}  {:>12.6}  {:>12.6}  {:>10}  {:>9.1}%   (slowdown vs 90%: {:+.1}%)",
            budget_pct,
            r.energy_joules,
            r.aopb_joules,
            r.cycles,
            r.over_budget_frac() * 100.0,
            100.0 * (r.cycles as f64 / base as f64 - 1.0),
        );
    }
    println!("\nTighter budgets trade performance for power accuracy; PTB keeps");
    println!("the area over the budget small even when the constraint bites.");
}
