//! The paper's §IV.D argument, end to end: measure each mechanism's actual
//! budget-matching error on a live simulation, then compute how many cores
//! would fit in a fixed TDP with that error — the business case for
//! accuracy.
//!
//! ```sh
//! cargo run --release -p ptb-core --example tdp_packing
//! ```

use ptb_core::report::normalized_aopb_pct;
use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
use ptb_metrics::cores_within_tdp;
use ptb_workloads::{Benchmark, Scale};

fn main() {
    let n_cores = 4;
    let bench = Benchmark::Barnes;
    let mk = |mech| {
        let cfg = SimConfig {
            n_cores,
            scale: Scale::Test,
            mechanism: mech,
            ..SimConfig::default()
        };
        Simulation::new(cfg).run(bench).expect("run")
    };
    let base = mk(MechanismKind::None);

    // §IV.D arithmetic: 100 W TDP, 16 cores, 50% budget -> 3.125 W/core.
    let tdp = 100.0;
    let per_core_budget = 3.125;

    println!("measured on {bench} ({n_cores} cores), then applied to the paper's");
    println!("100 W / 16-core / 50% budget example:\n");
    println!(
        "{:<24} {:>12} {:>14} {:>14}",
        "mechanism", "AoPB err %", "actual W/core", "cores @100W"
    );
    for mech in [
        MechanismKind::Dvfs,
        MechanismKind::TwoLevel,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::Dynamic,
            relax: 0.0,
        },
    ] {
        let r = mk(mech);
        let err = normalized_aopb_pct(&base, &r) / 100.0;
        println!(
            "{:<24} {:>12.1} {:>14.3} {:>14}",
            r.mechanism,
            err * 100.0,
            per_core_budget * (1.0 + err),
            cores_within_tdp(tdp, per_core_budget, err),
        );
    }
    println!(
        "{:<24} {:>12.1} {:>14.3} {:>14}",
        "ideal", 0.0, per_core_budget, 32
    );
    println!("\nEvery point of budget-matching error is a core you cannot ship.");
}
