//! Spin detection two ways: the dedicated BCT hardware of Li et al. (the
//! paper's \[12\]) versus PTB's free by-product — recognising the spin
//! power plateau (§III.E, Figure 6).
//!
//! Runs a 2-core scenario where core 1 must spin on a lock held by core 0,
//! then feeds core 1's per-cycle power trace to the power-pattern detector
//! and its committed instructions to a BCT detector.
//!
//! ```sh
//! cargo run --release -p ptb-core --example spin_detector
//! ```

use ptb_core::{MechanismKind, SimConfig, Simulation};
use ptb_isa::{BlockGenConfig, LockId};
use ptb_sync::PowerSpinDetector;
use ptb_workloads::{
    stmt::{flatten, Stmt},
    WorkloadSpec,
};

fn workload() -> WorkloadSpec {
    let holder = vec![
        Stmt::Lock(LockId(0)),
        Stmt::Compute {
            profile: 0,
            count: 20_000,
        },
        Stmt::Unlock(LockId(0)),
    ];
    let spinner = vec![
        Stmt::Compute {
            profile: 0,
            count: 1_500,
        },
        Stmt::Lock(LockId(0)),
        Stmt::Compute {
            profile: 0,
            count: 100,
        },
        Stmt::Unlock(LockId(0)),
    ];
    WorkloadSpec {
        name: "spin-detect".into(),
        programs: vec![flatten(&holder), flatten(&spinner)],
        profiles: vec![BlockGenConfig::default()],
        lock_kind: Default::default(),
        seed: 99,
    }
}

fn main() {
    let cfg = SimConfig {
        n_cores: 2,
        mechanism: MechanismKind::None,
        capture_trace: true,
        ..SimConfig::default()
    };
    let report = Simulation::new(cfg).run_spec(&workload()).expect("run");
    let trace = report.trace.as_ref().expect("trace");
    let spinner = 1usize;

    // Power-pattern detection on core 1's trace.
    let mut det = PowerSpinDetector::new(report.budget.local * 0.8, 0.5, 400);
    let mut fired_at = None;
    for (cycle, &p) in trace.per_core[spinner].iter().enumerate() {
        if det.observe(f64::from(p)) {
            fired_at = Some(cycle);
            break;
        }
    }

    println!("run length        : {} cycles", report.cycles);
    println!(
        "core 1 spin share : {:.1}% of its cycles",
        100.0 * report.cores[spinner].spin_cycles as f64 / report.cycles as f64
    );
    match fired_at {
        Some(c) => {
            println!("power-pattern spin detector fired at cycle {c}");
            println!(
                "  -> that is {:.1}% into the run; everything after is reclaimable",
                100.0 * c as f64 / report.cycles as f64
            );
        }
        None => println!("power-pattern detector did not fire (spin too short)"),
    }
    println!(
        "\nPTB needs no dedicated spin hardware: a core parked on the plateau\n\
         is simply a token donor. A BCT detector (ptb_sync::BctSpinDetector)\n\
         reaches the same verdict from committed-instruction footprints and\n\
         is available for the comparison study."
    );
}
