//! Quickstart: run one benchmark under Power Token Balancing and print the
//! paper's headline metrics.
//!
//! ```sh
//! cargo run --release -p ptb-core --example quickstart
//! ```

use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
use ptb_workloads::{Benchmark, Scale};

fn main() {
    // A 4-core CMP (Table 1 micro-architecture), 50 % power budget,
    // running the synthetic FFT model under PTB with the dynamic policy
    // selector.
    let cfg = SimConfig {
        n_cores: 4,
        scale: Scale::Test,
        budget_frac: 0.5,
        mechanism: MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::Dynamic,
            relax: 0.0,
        },
        ..SimConfig::default()
    };
    let report = Simulation::new(cfg)
        .run(Benchmark::Fft)
        .expect("simulation failed");

    println!("benchmark   : {}", report.benchmark);
    println!("mechanism   : {}", report.mechanism);
    println!("cores       : {}", report.n_cores);
    println!("cycles      : {}", report.cycles);
    println!("instructions: {}", report.committed());
    println!(
        "mean power  : {:.0} tokens/cycle (global budget {:.0})",
        report.mean_power, report.budget.global
    );
    println!("energy      : {:.6} J", report.energy_joules);
    println!(
        "AoPB        : {:.6} J over the budget ({:.1}% of cycles over)",
        report.aopb_joules,
        report.over_budget_frac() * 100.0
    );
    let f = report.breakdown_frac();
    println!(
        "time split  : {:.0}% busy, {:.0}% lock-acq, {:.0}% lock-rel, {:.0}% barrier",
        f[0] * 100.0,
        f[1] * 100.0,
        f[2] * 100.0,
        f[3] * 100.0
    );
    println!(
        "spin power  : {:.1}% of total energy",
        report.spin_power_frac() * 100.0
    );
}
