//! Integration tests for the `ptb-serve` fleet layer: lease claim /
//! heartbeat / complete / fail semantics over the wire, reaper-driven
//! failover, idempotent duplicate completions, divergence detection,
//! graceful degradation to local execution, batch-registry eviction,
//! the liveness probe — and the acceptance kill test: three real
//! `ptb_worker` processes, one SIGKILLed mid-job, 10% network chaos,
//! zero lost jobs, zero duplicated store writes, byte-identical
//! reports.

use ptb_core::{MechanismKind, SimConfig};
use ptb_farm::{Farm, FarmJob};
use ptb_serve::{http_call, ServeConfig, ServerConfig};
use ptb_workloads::{Benchmark, Scale};
use serde::{json, Deserialize, Map, Serialize, Value};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn job(bench: Benchmark, mech: MechanismKind, n_cores: usize) -> FarmJob {
    FarmJob::new(
        bench,
        SimConfig {
            n_cores,
            scale: Scale::Test,
            mechanism: mech,
            ..SimConfig::default()
        },
    )
}

fn fleet_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptb-fleet-it-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn submit_body(jobs: &[FarmJob]) -> String {
    let mut body = Map::new();
    body.insert(
        "jobs".into(),
        Value::Array(jobs.iter().map(|j| j.to_value()).collect()),
    );
    json::to_string(&Value::Object(body))
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> (u16, Value) {
    let (status, text) = http_call(addr, "POST", path, Some(body)).expect("POST round-trip");
    (status, json::parse(&text).unwrap_or(Value::Null))
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Value) {
    let (status, text) = http_call(addr, "GET", path, None).expect("GET round-trip");
    (status, json::parse(&text).unwrap_or(Value::Null))
}

fn str_field(v: &Value, name: &str) -> String {
    v.as_object()
        .and_then(|o| o.get(name))
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_owned()
}

fn u64_field(v: &Value, name: &str) -> u64 {
    v.as_object()
        .and_then(|o| o.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

fn arr_field(v: &Value, name: &str) -> Vec<Value> {
    v.as_object()
        .and_then(|o| o.get(name))
        .and_then(|x| match x {
            Value::Array(a) => Some(a.clone()),
            _ => None,
        })
        .unwrap_or_default()
}

fn counter(addr: SocketAddr, name: &str) -> f64 {
    let (_, metrics) = get_json(addr, "/v1/metrics");
    metrics
        .as_object()
        .and_then(|o| o.get(name))
        .and_then(Value::as_f64)
        .unwrap_or(-1.0)
}

/// `{"worker": ..}` plus extras, serialised.
fn worker_body(worker: &str, extra: &[(&str, Value)]) -> String {
    let mut m = Map::new();
    m.insert("worker".into(), Value::Str(worker.to_owned()));
    for (k, v) in extra {
        m.insert((*k).to_owned(), v.clone());
    }
    json::to_string(&Value::Object(m))
}

fn claim(addr: SocketAddr, worker: &str, ttl_ms: Option<u64>) -> Option<(String, Value, u64)> {
    let extra: Vec<(&str, Value)> = match ttl_ms {
        Some(ms) => vec![("ttl_ms", Value::U64(ms))],
        None => vec![],
    };
    let (status, v) = post_json(addr, "/v1/work/claim", &worker_body(worker, &extra));
    assert_eq!(status, 200, "claim failed: {v:?}");
    let obj = v.as_object().expect("claim returns an object");
    match obj.get("job") {
        Some(Value::Null) | None => None,
        Some(j) => Some((str_field(&v, "key"), j.clone(), u64_field(&v, "ttl_ms"))),
    }
}

fn poll_batch(addr: SocketAddr, id: &str, deadline: Duration) {
    let until = Instant::now() + deadline;
    loop {
        let (status, v) = get_json(addr, &format!("/v1/batches/{id}"));
        assert_eq!(status, 200, "{v:?}");
        if v.as_object()
            .and_then(|o| o.get("done"))
            .and_then(Value::as_bool)
            .unwrap_or(false)
        {
            return;
        }
        assert!(Instant::now() < until, "batch {id} did not settle");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// A coordinator-mode server: no local execution, fast reaper, short
/// leases — every job must flow through the `/v1/work/*` endpoints.
fn coordinator(dir: &std::path::Path, cfg: ServeConfig) -> ptb_serve::ServeHandle {
    let farm = Arc::new(Farm::open(dir.join("farm")).expect("open farm"));
    ptb_serve::start(farm, "127.0.0.1:0", cfg, ServerConfig::default()).expect("start server")
}

fn coordinator_cfg() -> ServeConfig {
    ServeConfig {
        local_execution: false,
        lease_default_ttl: Duration::from_millis(400),
        lease_max_ttl: Duration::from_secs(10),
        reaper_tick: Duration::from_millis(50),
        ..ServeConfig::default()
    }
}

#[test]
fn lease_expires_without_heartbeat_and_is_reclaimed_by_another_worker() {
    let dir = fleet_dir("expiry");
    let handle = coordinator(&dir, coordinator_cfg());
    let addr = handle.addr();

    let jobs = vec![job(Benchmark::Fft, MechanismKind::None, 2)];
    let (status, _) = post_json(addr, "/v1/batches", &submit_body(&jobs));
    assert_eq!(status, 200);

    // w1 claims and goes silent; w2 finds nothing while the lease is
    // live, then inherits the job once the reaper requeues it.
    let (key, _, ttl) = claim(addr, "w1", None).expect("w1 claims the job");
    assert_eq!(key, jobs[0].key());
    assert_eq!(ttl, 400);
    assert!(claim(addr, "w2", None).is_none(), "job is leased to w1");

    let deadline = Instant::now() + Duration::from_secs(30);
    let reclaimed = loop {
        if let Some((k, _, _)) = claim(addr, "w2", None) {
            break k;
        }
        assert!(Instant::now() < deadline, "expired lease never requeued");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(reclaimed, key, "w2 inherits the very job w1 abandoned");
    assert!(counter(addr, "serve.lease.expired") >= 1.0);
    assert!(counter(addr, "serve.lease.requeued") >= 1.0);

    // And the claims survive in /v1/jobs as lease state.
    let (_, jv) = get_json(addr, &format!("/v1/jobs/{key}"));
    assert_eq!(str_field(&jv, "state"), "leased");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heartbeats_extend_the_lease_past_many_reaper_ticks() {
    let dir = fleet_dir("heartbeat");
    let handle = coordinator(&dir, coordinator_cfg());
    let addr = handle.addr();

    let jobs = vec![job(Benchmark::Radix, MechanismKind::None, 2)];
    post_json(addr, "/v1/batches", &submit_body(&jobs));
    let (key, job_v, _) = claim(addr, "w1", Some(400)).expect("claim");

    // Beat at ttl/3 for 6 full TTLs: the reaper must never reclaim.
    for _ in 0..18 {
        std::thread::sleep(Duration::from_millis(130));
        let (status, v) = post_json(
            addr,
            &format!("/v1/work/{key}/heartbeat"),
            &worker_body("w1", &[("progress", Value::Str("simulating".into()))]),
        );
        assert_eq!(status, 200, "heartbeat refused: {v:?}");
        assert!(claim(addr, "w2", None).is_none(), "lease leaked to w2");
    }
    assert_eq!(counter(addr, "serve.lease.expired"), 0.0);
    assert!(counter(addr, "serve.lease.heartbeats") >= 18.0);

    // The worker then completes; the served report is byte-identical
    // to a direct in-process run of the claimed job.
    let claimed = FarmJob::from_value(&job_v).expect("claimed job parses");
    let report = claimed.simulate();
    let (status, v) = post_json(
        addr,
        &format!("/v1/work/{key}/complete"),
        &worker_body("w1", &[("report", report.to_value())]),
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(str_field(&v, "outcome"), "stored");
    let (status, served) =
        http_call(addr, "GET", &format!("/v1/reports/{key}"), None).expect("fetch");
    assert_eq!(status, 200);
    assert_eq!(served, json::to_string(&report.to_value()));

    // Heartbeating a settled job is a 409: the lease is gone.
    let (status, _) = post_json(
        addr,
        &format!("/v1/work/{key}/heartbeat"),
        &worker_body("w1", &[]),
    );
    assert_eq!(status, 409);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_completions_are_idempotent_and_divergence_is_a_hard_error() {
    let dir = fleet_dir("divergent");
    let handle = coordinator(&dir, coordinator_cfg());
    let addr = handle.addr();

    let jobs = vec![job(Benchmark::Cholesky, MechanismKind::None, 2)];
    post_json(addr, "/v1/batches", &submit_body(&jobs));
    let (key, job_v, _) = claim(addr, "w1", Some(5_000)).expect("claim");
    let report = FarmJob::from_value(&job_v).expect("job parses").simulate();

    let (status, v) = post_json(
        addr,
        &format!("/v1/work/{key}/complete"),
        &worker_body("w1", &[("report", report.to_value())]),
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(str_field(&v, "outcome"), "stored");

    // A zombie worker re-uploading identical bytes is harmless.
    let (status, v) = post_json(
        addr,
        &format!("/v1/work/{key}/complete"),
        &worker_body("w2", &[("report", report.to_value())]),
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(str_field(&v, "outcome"), "duplicate");
    assert_eq!(counter(addr, "fleet.complete.duplicate"), 1.0);

    // Different bytes under the same content key: determinism is
    // broken somewhere — hard 409, and the pair lands in /v1/status.
    let mut tampered = report.to_value();
    if let Value::Object(o) = &mut tampered {
        let cycles = o.get("cycles").and_then(Value::as_u64).unwrap_or(0);
        o.insert("cycles".into(), Value::U64(cycles + 1));
    }
    let (status, v) = post_json(
        addr,
        &format!("/v1/work/{key}/complete"),
        &worker_body("w3", &[("report", tampered)]),
    );
    assert_eq!(status, 409, "{v:?}");
    let (_, sv) = get_json(addr, "/v1/status");
    let divergent = arr_field(&sv, "divergent");
    assert_eq!(divergent.len(), 1, "{sv:?}");
    assert_eq!(str_field(&divergent[0], "key"), key);
    assert_eq!(str_field(&divergent[0], "worker"), "w3");
    assert_eq!(counter(addr, "serve.lease.divergent"), 1.0);

    // The store kept exactly the first upload.
    let (status, served) =
        http_call(addr, "GET", &format!("/v1/reports/{key}"), None).expect("fetch");
    assert_eq!(status, 200);
    assert_eq!(served, json::to_string(&report.to_value()));
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fail_kinds_map_to_bounded_retry_or_quarantine() {
    let dir = fleet_dir("failkinds");
    let cfg = ServeConfig {
        remote_retry_max: 2,
        ..coordinator_cfg()
    };
    let handle = coordinator(&dir, cfg);
    let addr = handle.addr();
    let farm = handle.state().farm();

    // Job A alone first, so re-claims after a requeue get A back.
    post_json(
        addr,
        "/v1/batches",
        &submit_body(&[job(Benchmark::Fft, MechanismKind::None, 2)]),
    );

    // Transient faults requeue with an attempt counter until
    // remote_retry_max, then quarantine.
    let (key_a, _, _) = claim(addr, "w1", Some(5_000)).expect("claim A");
    let (status, v) = post_json(
        addr,
        &format!("/v1/work/{key_a}/fail"),
        &worker_body(
            "w1",
            &[
                ("kind", Value::Str("transient".into())),
                ("message", Value::Str("store hiccup".into())),
            ],
        ),
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(str_field(&v, "outcome"), "requeued");
    assert_eq!(u64_field(&v, "attempts"), 1);

    let (key_a2, _, _) = claim(addr, "w1", Some(5_000)).expect("requeued job claimable");
    assert_eq!(key_a2, key_a);
    let (status, v) = post_json(
        addr,
        &format!("/v1/work/{key_a}/fail"),
        &worker_body("w1", &[("kind", Value::Str("transient".into()))]),
    );
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(
        str_field(&v, "outcome"),
        "quarantined",
        "retry budget of 2 exhausted on the second transient fault"
    );

    // Fatal and timeout faults quarantine immediately. An unknown
    // kind is a 400 that does NOT consume the lease.
    post_json(
        addr,
        "/v1/batches",
        &submit_body(&[
            job(Benchmark::Radix, MechanismKind::None, 2),
            job(Benchmark::Cholesky, MechanismKind::None, 2),
        ]),
    );
    for (worker, kind) in [("w2", "fatal"), ("w3", "timeout")] {
        let (key, _, _) = claim(addr, worker, Some(5_000)).expect("claim");
        let (status, _) = post_json(
            addr,
            &format!("/v1/work/{key}/fail"),
            &worker_body(worker, &[("kind", Value::Str("martian".into()))]),
        );
        assert_eq!(status, 400, "unknown fault kind");
        let (status, v) = post_json(
            addr,
            &format!("/v1/work/{key}/fail"),
            &worker_body(worker, &[("kind", Value::Str(kind.into()))]),
        );
        assert_eq!(status, 200, "lease survived the bad request: {v:?}");
        assert_eq!(str_field(&v, "outcome"), "quarantined", "kind {kind}");
    }
    let quarantined = farm.quarantine().load().unwrap_or_default();
    assert_eq!(quarantined.len(), 3, "all three jobs end in failed.jsonl");
    assert_eq!(counter(addr, "fleet.fail.transient"), 2.0);
    assert_eq!(counter(addr, "fleet.fail.fatal"), 1.0);
    assert_eq!(counter(addr, "fleet.fail.timeout"), 1.0);
    assert_eq!(counter(addr, "fleet.quarantined"), 3.0);

    // A worker that lost its lease cannot fail the job (409), on a
    // settled key or an unknown one alike.
    let (status, _) = post_json(
        addr,
        &format!("/v1/work/{key_a}/fail"),
        &worker_body("w9", &[("kind", Value::Str("transient".into()))]),
    );
    assert_eq!(status, 409);
    let quarantined_before = counter(addr, "fleet.quarantined");
    let (status, _) = post_json(
        addr,
        "/v1/work/nosuchkey/fail",
        &worker_body("w9", &[("kind", Value::Str("transient".into()))]),
    );
    assert_eq!(status, 409, "no lease on an unknown key either");
    assert_eq!(counter(addr, "fleet.quarantined"), quarantined_before);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_workers_degrades_to_local_and_silent_workers_hand_the_queue_back() {
    let dir = fleet_dir("degrade");
    let cfg = ServeConfig {
        sim_threads: 2,
        worker_grace: Duration::from_millis(500),
        reaper_tick: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let handle = coordinator(&dir, cfg);
    let addr = handle.addr();

    // No worker has ever connected: batches complete locally.
    let first = vec![job(Benchmark::Fft, MechanismKind::None, 2)];
    let (_, v) = post_json(addr, "/v1/batches", &submit_body(&first));
    poll_batch(addr, &str_field(&v, "batch"), Duration::from_secs(300));

    // A worker shows up (empty-queue claim still registers contact),
    // then goes silent. Work submitted while it looked alive must
    // still complete: past worker_grace the local scheduler takes the
    // queue back.
    assert!(claim(addr, "ghost", None).is_none());
    let (_, sv) = get_json(addr, "/v1/status");
    assert_eq!(
        sv.as_object()
            .and_then(|o| o.get("remote_active"))
            .and_then(Value::as_bool),
        Some(true),
        "{sv:?}"
    );
    let second = vec![job(Benchmark::Radix, MechanismKind::None, 2)];
    let (_, v) = post_json(addr, "/v1/batches", &submit_body(&second));
    poll_batch(addr, &str_field(&v, "batch"), Duration::from_secs(300));
    assert_eq!(
        counter(addr, "fleet.complete.stored"),
        0.0,
        "nothing was remotely executed"
    );
    assert_eq!(counter(addr, "serve.completed"), 2.0);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn settled_batches_are_evicted_after_their_ttl() {
    let dir = fleet_dir("batchttl");
    let cfg = ServeConfig {
        sim_threads: 2,
        batch_ttl: Duration::from_millis(300),
        reaper_tick: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let handle = coordinator(&dir, cfg);
    let addr = handle.addr();

    let jobs = vec![job(Benchmark::Fft, MechanismKind::None, 2)];
    let (_, v) = post_json(addr, "/v1/batches", &submit_body(&jobs));
    let id = str_field(&v, "batch");
    poll_batch(addr, &id, Duration::from_secs(300));

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _) = get_json(addr, &format!("/v1/batches/{id}"));
        if status == 404 {
            break;
        }
        assert!(Instant::now() < deadline, "settled batch never evicted");
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(counter(addr, "serve.batches.evicted") >= 1.0);
    // The job registry (and the store) are untouched by eviction.
    let (status, _) = get_json(addr, &format!("/v1/reports/{}", jobs[0].key()));
    assert_eq!(status, 200);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthz_turns_503_when_the_journal_dies() {
    let dir = fleet_dir("healthz");
    let handle = coordinator(&dir, ServeConfig::default());
    let addr = handle.addr();

    let (status, v) = get_json(addr, "/healthz");
    assert_eq!(status, 200, "{v:?}");

    // Yank the farm directory out from under the server: the journal
    // stops being appendable and liveness must say so.
    std::fs::remove_dir_all(dir.join("farm")).expect("remove farm dir");
    let (status, v) = get_json(addr, "/healthz");
    assert_eq!(status, 503, "{v:?}");
    assert!(str_field(&v, "reason").contains("journal"), "{v:?}");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Child process that is SIGKILLed (or at least killed) on drop, so a
/// failing assertion never leaks workers past the test.
struct Reaped(std::process::Child);

impl Drop for Reaped {
    fn drop(&mut self) {
        self.0.kill().ok();
        self.0.wait().ok();
    }
}

fn spawn_worker(addr: SocketAddr, name: &str, extra: &[&str]) -> std::process::Child {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_ptb_worker"));
    cmd.arg("--addr")
        .arg(addr.to_string())
        .arg("--name")
        .arg(name)
        .arg("--poll-ms")
        .arg("50")
        .stdout(std::process::Stdio::null());
    for a in extra {
        cmd.arg(a);
    }
    cmd.spawn().expect("spawn ptb_worker")
}

/// The acceptance test from the issue: a batch fanned out to three
/// real worker processes over loopback, one SIGKILLed while it
/// provably holds a lease, the survivors running under 10% seeded
/// network chaos — and still: zero lost jobs, zero duplicated store
/// writes, every served report byte-identical to a sequential
/// in-process run.
#[test]
fn fleet_kill_chaos_acceptance() {
    let dir = fleet_dir("killchaos");
    let cfg = ServeConfig {
        local_execution: false,
        lease_default_ttl: Duration::from_millis(2_000),
        lease_max_ttl: Duration::from_secs(10),
        reaper_tick: Duration::from_millis(100),
        max_claims: 10,
        ..ServeConfig::default()
    };
    let handle = coordinator(&dir, cfg);
    let addr = handle.addr();

    let jobs = vec![
        job(Benchmark::Fft, MechanismKind::None, 2),
        job(Benchmark::Radix, MechanismKind::None, 2),
        job(Benchmark::Cholesky, MechanismKind::None, 2),
        job(Benchmark::Fft, MechanismKind::Dvfs, 2),
        job(Benchmark::Radix, MechanismKind::Dvfs, 2),
        job(Benchmark::Fft, MechanismKind::None, 4),
    ];
    // The sequential ground truth, bytes and all, before any worker
    // ever touches the farm.
    let expected: Vec<(String, String)> = jobs
        .iter()
        .map(|j| (j.key(), json::to_string(&j.simulate().to_value())))
        .collect();

    // The victim claims first (no competitors yet), then parks in its
    // --hold-ms window so the SIGKILL provably lands mid-job.
    let victim = Reaped(spawn_worker(
        addr,
        "victim",
        &["--hold-ms", "60000", "--ttl-ms", "2000"],
    ));
    let (_, v) = post_json(addr, "/v1/batches", &submit_body(&jobs));
    let batch_id = str_field(&v, "batch");
    assert!(!batch_id.is_empty(), "{v:?}");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, wv) = get_json(addr, "/v1/workers");
        let held = arr_field(&wv, "leases")
            .iter()
            .any(|l| str_field(l, "worker") == "victim");
        if held {
            break;
        }
        assert!(Instant::now() < deadline, "victim never claimed a lease");
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(victim); // SIGKILL while the lease is live and the job unfinished

    // Two survivors under 10% seeded network chaos drain everything,
    // including the job the victim died holding.
    let _w2 = Reaped(spawn_worker(
        addr,
        "w2",
        &["--ttl-ms", "2000", "--chaos", "0.1", "--chaos-seed", "42"],
    ));
    let _w3 = Reaped(spawn_worker(
        addr,
        "w3",
        &["--ttl-ms", "2000", "--chaos", "0.1", "--chaos-seed", "43"],
    ));
    poll_batch(addr, &batch_id, Duration::from_secs(300));

    // Zero lost jobs; the dead worker's lease demonstrably expired.
    assert!(
        counter(addr, "serve.lease.expired") >= 1.0,
        "the SIGKILLed worker's lease must have been reaped"
    );
    let (_, sv) = get_json(addr, "/v1/status");
    assert_eq!(arr_field(&sv, "divergent").len(), 0, "{sv:?}");
    assert_eq!(
        sv.as_object()
            .and_then(|o| o.get("jobs"))
            .map(|j| u64_field(j, "done"))
            .unwrap_or(0),
        jobs.len() as u64,
        "{sv:?}"
    );
    // Zero duplicated store writes: exactly one entry per unique job.
    assert_eq!(u64_field(&sv, "entries"), jobs.len() as u64, "{sv:?}");
    assert_eq!(counter(addr, "serve.failed"), 0.0);
    assert_eq!(
        handle
            .state()
            .farm()
            .quarantine()
            .load()
            .unwrap_or_default()
            .len(),
        0,
        "nothing quarantined"
    );

    // Byte-identical to the sequential ground truth, every report.
    for (key, want) in &expected {
        let (status, served) =
            http_call(addr, "GET", &format!("/v1/reports/{key}"), None).expect("fetch");
        assert_eq!(status, 200, "{served}");
        assert_eq!(&served, want, "report bytes diverged for {key}");
    }
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
