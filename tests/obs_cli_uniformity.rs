//! Every figure binary must accept the shared observability flags
//! (`--trace-out`/`--metrics-out`/`--profile`/`--audit`) through
//! `ObsArgs::parse`, so the flag set stays uniform across the CLI
//! surface instead of silently ignored by some binaries.
//!
//! This is a source-level check: it scans `crates/experiments/src/bin`
//! and asserts each binary calls `ObsArgs::parse`. Exempt are the
//! non-figure utilities with their own argv contracts: `farm_ctl`
//! (subcommand CLI over an existing store — no simulation of its own)
//! and `sim_check` (the fuzzer, driven by the validation harness).

use std::path::Path;

/// Binaries allowed to skip `ObsArgs::parse`.
const EXEMPT: &[&str] = &["farm_ctl.rs", "sim_check.rs"];

#[test]
fn every_figure_binary_parses_the_shared_obs_flags() {
    let bin_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut missing = Vec::new();
    let mut seen = 0usize;
    for entry in std::fs::read_dir(&bin_dir).expect("list src/bin") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        if !name.ends_with(".rs") || EXEMPT.contains(&name.as_str()) {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).expect("read binary source");
        if !src.contains("ObsArgs::parse") {
            missing.push(name);
        }
    }
    assert!(
        seen >= 17,
        "expected at least 17 non-exempt binaries, found {seen} — \
         if binaries moved, update this test"
    );
    assert!(
        missing.is_empty(),
        "binaries ignoring the shared obs flags (wire ObsArgs::parse \
         or add to EXEMPT with a rationale): {missing:?}"
    );
}
