//! Chaos integration tests: the farm's graceful-degradation contract
//! under deterministic filesystem fault injection, plus the simulator's
//! livelock watchdog.
//!
//! The headline property (ISSUE acceptance): a 64-job batch running
//! against a `ChaosIo` at a 10 % uniform fault rate completes — every
//! job either returns a report **byte-identical** to a fault-free run
//! or lands in the quarantine manifest — and a subsequent healthy-I/O
//! retry recovers the whole farm.
//!
//! CI sweeps these tests across seeds and rates via `PTB_CHAOS_SEED`
//! and `PTB_CHAOS_RATE`.

use ptb_core::sim::SimError;
use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
use ptb_farm::{ChaosConfig, ChaosIo, ExecConfig, Farm, FarmIo, FarmJob};
use ptb_isa::{BlockGenConfig, LockId};
use ptb_workloads::{Benchmark, FlatStmt, LockKind, Scale, WorkloadSpec};
use serde::{json, Serialize};
use std::path::PathBuf;
use std::sync::Arc;

fn job(bench: Benchmark, mech: MechanismKind, n_cores: usize) -> FarmJob {
    FarmJob::new(
        bench,
        SimConfig {
            n_cores,
            scale: Scale::Test,
            mechanism: mech,
            ..SimConfig::default()
        },
    )
}

fn chaos_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptb-chaos-it-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The acceptance grid: 64 distinct jobs spanning every benchmark, two
/// core counts, and three mechanisms.
fn grid64() -> Vec<FarmJob> {
    let mut jobs = Vec::new();
    for n in [2, 4] {
        for bench in Benchmark::ALL {
            jobs.push(job(bench, MechanismKind::None, n));
            jobs.push(job(bench, MechanismKind::Dvfs, n));
        }
    }
    let ptb = MechanismKind::PtbTwoLevel {
        policy: PtbPolicy::ToAll,
        relax: 0.0,
    };
    for bench in Benchmark::ALL.into_iter().take(8) {
        jobs.push(job(bench, ptb, 2));
    }
    jobs
}

fn report_json(r: &ptb_core::RunReport) -> String {
    json::to_string(&r.to_value())
}

/// ISSUE acceptance: under a 10 % uniform fault rate, a 64-job batch
/// completes with every non-faulted report byte-identical to a
/// fault-free farm's, every faulted job quarantined, and a healthy-I/O
/// retry recovering all of them.
#[test]
fn chaotic_batch_degrades_gracefully_and_recovers() {
    let rate = env_f64("PTB_CHAOS_RATE", 0.10);
    let seed = env_u64("PTB_CHAOS_SEED", 1);
    let jobs = grid64();
    assert_eq!(jobs.len(), 64, "acceptance batch is 64 jobs");
    let exec = ExecConfig::new(4);

    // Fault-free reference run.
    let base_dir = chaos_dir("base");
    let base_farm = Farm::open(&base_dir).expect("open baseline farm");
    let baseline: Vec<String> = base_farm
        .try_run_batch(&jobs, &exec)
        .iter()
        .map(|r| report_json(r.as_ref().expect("fault-free run succeeds")))
        .collect();
    drop(base_farm);

    // The same batch through a chaotic filesystem.
    let dir = chaos_dir("storm");
    let chaos = Arc::new(ChaosIo::new(ChaosConfig::uniform(seed, rate)));
    let farm = Farm::open_with_io(&dir, chaos.clone()).expect("open chaotic farm");
    let outcomes = farm.try_run_batch(&jobs, &exec);
    assert_eq!(outcomes.len(), jobs.len(), "one outcome per job, always");
    let mut failed = 0usize;
    for ((j, outcome), expected) in jobs.iter().zip(&outcomes).zip(&baseline) {
        match outcome {
            Ok(r) => assert_eq!(
                &report_json(r),
                expected,
                "{}: a returned report is never corrupt",
                j.label()
            ),
            Err(e) => {
                failed += 1;
                farm.quarantine_job(j, e).expect("quarantine writable");
            }
        }
    }
    assert_eq!(
        farm.quarantine().len(),
        failed,
        "every failure is quarantined, nothing else is"
    );
    assert_eq!(farm.stats().quarantined, failed as u64);
    let injected: u64 = chaos.counters().iter().map(|(_, v)| *v).sum();
    if rate > 0.0 {
        assert!(
            injected > 0,
            "a 10%+ rate over hundreds of operations injects faults"
        );
        let registry = farm.counters();
        let text = registry.to_table("farm counters").to_text();
        assert!(
            text.contains("farm.chaos."),
            "chaos counters surface through Farm::counters"
        );
    }
    drop(farm);

    // Recovery: reopen on the real filesystem and retry the manifest.
    let farm = Farm::open(&dir).expect("reopen healthy");
    let (recovered, still) = farm
        .retry_quarantined(&exec)
        .expect("quarantine retry runs");
    assert_eq!((recovered, still), (failed, 0), "healthy I/O recovers all");
    assert!(farm.quarantine().is_empty(), "manifest removed when empty");
    drop(farm);

    // A fresh handle over the recovered store serves the whole grid
    // from cache, byte-identical to the fault-free reference.
    let farm = Farm::open(&dir).expect("reopen recovered");
    for (outcome, expected) in farm.try_run_batch(&jobs, &exec).iter().zip(&baseline) {
        assert_eq!(
            &report_json(outcome.as_ref().expect("recovered farm is healthy")),
            expected
        );
    }
    assert_eq!(farm.stats().misses, 0, "recovery left nothing to re-run");
    assert_eq!(farm.stats().hits, jobs.len() as u64);

    std::fs::remove_dir_all(&base_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Fault decisions are a pure function of (seed, op, path, ordinal):
/// re-running the same batch in the same location with the same seed
/// injects the same faults and fails the same jobs, regardless of how
/// worker threads interleave.
#[test]
fn injected_faults_are_deterministic_per_seed() {
    let jobs: Vec<FarmJob> = Benchmark::ALL
        .into_iter()
        .take(8)
        .map(|b| job(b, MechanismKind::None, 2))
        .collect();
    let dir = chaos_dir("determinism");
    let run = || {
        std::fs::remove_dir_all(&dir).ok();
        let chaos = Arc::new(ChaosIo::new(ChaosConfig::uniform(0xC1A05, 0.6)));
        let farm = Farm::open_with_io(&dir, chaos.clone()).expect("open");
        let outcomes = farm.try_run_batch(&jobs, &ExecConfig::new(3));
        let failures: Vec<String> = jobs
            .iter()
            .zip(&outcomes)
            .filter(|(_, o)| o.is_err())
            .map(|(j, _)| j.label())
            .collect();
        (failures, chaos.counters())
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed, same faults, same failures");
    assert!(
        !first.0.is_empty(),
        "a 60% fault rate defeats the 3-attempt retry budget for some job"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A classic ABBA deadlock: thread 0 takes lock 0 then wants lock 1,
/// thread 1 takes lock 1 then wants lock 0. The program is statically
/// well-formed (balanced acquire/release), so only the runtime watchdog
/// can catch it.
fn abba_deadlock() -> WorkloadSpec {
    let prog = |first: usize, second: usize| {
        vec![
            FlatStmt::Compute {
                profile: 0,
                count: 64,
            },
            FlatStmt::Lock(LockId(first)),
            // A wide window: both threads hold their first lock long
            // before either requests its second.
            FlatStmt::Compute {
                profile: 0,
                count: 256,
            },
            FlatStmt::Lock(LockId(second)),
            FlatStmt::Compute {
                profile: 0,
                count: 4,
            },
            FlatStmt::Unlock(LockId(second)),
            FlatStmt::Unlock(LockId(first)),
        ]
    };
    WorkloadSpec {
        name: "abba-deadlock".into(),
        programs: vec![prog(0, 1), prog(1, 0)],
        profiles: vec![BlockGenConfig::default()],
        seed: 7,
        lock_kind: LockKind::TestAndSet,
    }
}

/// ISSUE acceptance: an infinite-spin workload surfaces as a typed
/// `CycleBudgetExceeded` error — deterministically — instead of hanging
/// until `max_cycles`.
#[test]
fn livelock_watchdog_turns_deadlock_into_a_typed_error() {
    let spec = abba_deadlock();
    assert!(
        spec.validate().is_empty(),
        "deadlock is a runtime property; the program is statically valid"
    );
    let cfg = SimConfig {
        n_cores: 2,
        scale: Scale::Test,
        spin_cycle_budget: Some(4_000),
        ..SimConfig::default()
    };
    let run = || {
        Simulation::new(cfg.clone())
            .run_spec(&spec)
            .expect_err("an ABBA deadlock can never finish")
    };
    let err = run();
    match &err {
        SimError::CycleBudgetExceeded {
            budget,
            cycle,
            spinning,
        } => {
            assert_eq!(*budget, 4_000);
            assert_eq!(spinning, &vec![0, 1], "both cores are stuck");
            assert!(
                *cycle < SimConfig::default().max_cycles,
                "the watchdog fires long before the hard cycle limit"
            );
        }
        other => panic!("expected CycleBudgetExceeded, got: {other}"),
    }
    assert_eq!(
        err.to_string(),
        run().to_string(),
        "the watchdog fires at the same cycle every run"
    );
}
