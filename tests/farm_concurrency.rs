//! Concurrency guarantees of a shared `Farm` handle: many threads
//! submitting the same key must agree on one byte-identical report and
//! leave exactly one store entry behind, and a sweep killed mid-batch
//! must replay exactly its unfinished remainder from the journal in a
//! fresh process.

use ptb_core::{MechanismKind, SimConfig};
use ptb_farm::{ExecConfig, Farm, FarmJob};
use ptb_workloads::{Benchmark, Scale};
use serde::{json, Serialize};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

fn job(bench: Benchmark, mech: MechanismKind, n_cores: usize) -> FarmJob {
    FarmJob::new(
        bench,
        SimConfig {
            n_cores,
            scale: Scale::Test,
            mechanism: mech,
            ..SimConfig::default()
        },
    )
}

fn farm_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptb-farm-cc-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn parallel_same_key_submitters_write_once_and_agree() {
    let dir = farm_dir("samekey");
    let farm = Arc::new(Farm::open(&dir).expect("open"));
    let point = job(Benchmark::Fft, MechanismKind::None, 2);
    let key = point.key();

    // Eight threads release together, each running the identical job
    // through the failure-isolating batch path on the shared handle.
    let n = 8;
    let barrier = Arc::new(Barrier::new(n));
    let reports: Vec<String> = (0..n)
        .map(|_| {
            let farm = farm.clone();
            let point = point.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut out = farm.try_run_batch(std::slice::from_ref(&point), &ExecConfig::new(1));
                let report = out.remove(0).expect("job succeeds");
                json::to_string(&report.to_value())
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("submitter thread"))
        .collect();

    // One result, byte-identical everywhere, exactly one store entry —
    // the losers of the write race atomically renamed over the same
    // bytes, never alongside them.
    for r in &reports[1..] {
        assert_eq!(r, &reports[0], "racing submitters disagree on the report");
    }
    assert_eq!(farm.store().len(), 1, "one entry for one key");
    farm.store().verify_entry(&key).expect("entry is intact");
    let (ok, dropped) = farm.verify().expect("verify");
    assert_eq!((ok, dropped), (1, 0));
    assert!(
        farm.pending().expect("journal readable").is_empty(),
        "no submitter left the journal dirty"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_mixed_batches_complete_every_key_exactly_once() {
    let dir = farm_dir("mixed");
    let farm = Arc::new(Farm::open(&dir).expect("open"));
    let points = [
        job(Benchmark::Fft, MechanismKind::None, 2),
        job(Benchmark::Radix, MechanismKind::None, 2),
        job(Benchmark::Fft, MechanismKind::Dvfs, 2),
    ];

    // Six threads, each submitting a rotated view of the same three
    // points, all racing on the shared handle.
    let n = 6;
    let barrier = Arc::new(Barrier::new(n));
    let handles: Vec<_> = (0..n)
        .map(|t| {
            let farm = farm.clone();
            let barrier = barrier.clone();
            let batch: Vec<FarmJob> = (0..points.len())
                .map(|i| points[(t + i) % 3].clone())
                .collect();
            std::thread::spawn(move || {
                barrier.wait();
                for out in farm.try_run_batch(&batch, &ExecConfig::new(2)) {
                    out.expect("job succeeds");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter thread");
    }

    assert_eq!(farm.store().len(), 3, "three keys, three entries");
    for p in &points {
        farm.store().verify_entry(&p.key()).expect("entry intact");
        // Every stored report matches a direct simulation bit for bit.
        let direct = json::to_string(&p.simulate().to_value());
        let (_, stored) = farm
            .store()
            .read_entry(&p.key())
            .expect("readable")
            .expect("present");
        assert_eq!(json::to_string(&stored.to_value()), direct);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_replays_exactly_the_unfinished_remainder_after_a_kill() {
    let dir = farm_dir("replay");
    let points = [
        job(Benchmark::Fft, MechanismKind::None, 2),
        job(Benchmark::Radix, MechanismKind::None, 2),
        job(Benchmark::Cholesky, MechanismKind::None, 2),
    ];

    // Process one schedules all three, finishes only the first, then
    // dies (simulated by dropping the handle mid-sweep).
    {
        let farm = Farm::open(&dir).expect("open");
        farm.record_pending(&points).expect("journal the sweep");
        farm.run_batch(std::slice::from_ref(&points[0]), 1);
        assert_eq!(farm.store().len(), 1);
    }

    // Process two sees exactly the two unfinished jobs — no more, no
    // less — and resuming completes the sweep.
    let farm = Farm::open(&dir).expect("reopen");
    let pending = farm.pending().expect("journal readable");
    let mut pending_keys: Vec<String> = pending.iter().map(|(k, _)| k.clone()).collect();
    pending_keys.sort();
    let mut want: Vec<String> = points[1..].iter().map(|p| p.key()).collect();
    want.sort();
    assert_eq!(
        pending_keys, want,
        "remainder is exactly the unfinished jobs"
    );

    let done = farm.try_resume(&ExecConfig::new(2)).expect("resume");
    assert_eq!(done.len(), 2);
    for (_, outcome) in &done {
        assert!(outcome.is_ok(), "resumed job failed: {outcome:?}");
    }
    assert_eq!(farm.store().len(), 3, "the whole sweep is stored");
    assert!(
        farm.pending().expect("journal readable").is_empty(),
        "journal is settled after the resume"
    );
    for p in &points {
        let direct = json::to_string(&p.simulate().to_value());
        let (_, stored) = farm
            .store()
            .read_entry(&p.key())
            .expect("readable")
            .expect("present");
        assert_eq!(
            json::to_string(&stored.to_value()),
            direct,
            "resumed report matches a direct run for {}",
            p.label()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
