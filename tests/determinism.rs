//! Determinism regression tests: the correctness precondition for the
//! `ptb-farm` result cache. A cached report may be substituted for a
//! fresh simulation only if the same `SimConfig` + seed always produces
//! the **byte-identical serialised** `RunReport` — not just the same
//! headline numbers.

use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
use ptb_farm::FarmJob;
use ptb_workloads::{Benchmark, Scale};
use serde::{json, Serialize};

fn cfg(n_cores: usize, mechanism: MechanismKind) -> SimConfig {
    SimConfig {
        n_cores,
        scale: Scale::Test,
        mechanism,
        ..SimConfig::default()
    }
}

fn serialised(config: &SimConfig, bench: Benchmark) -> String {
    let report = Simulation::new(config.clone()).run(bench).expect("run");
    json::to_string(&report.to_value())
}

#[test]
fn same_config_and_seed_give_byte_identical_reports() {
    let points = [
        (Benchmark::Fft, cfg(2, MechanismKind::None)),
        (Benchmark::Radix, cfg(4, MechanismKind::Dvfs)),
        (
            Benchmark::Barnes,
            cfg(
                4,
                MechanismKind::PtbTwoLevel {
                    policy: PtbPolicy::ToAll,
                    relax: 0.0,
                },
            ),
        ),
    ];
    for (bench, config) in points {
        let a = serialised(&config, bench);
        let b = serialised(&config, bench);
        assert_eq!(
            a,
            b,
            "{bench} under {} must be deterministic",
            config.mechanism.label()
        );
    }
}

#[test]
fn farm_job_simulate_is_deterministic_too() {
    // The farm's execution path (FarmJob::simulate) must agree with the
    // direct Simulation path it caches for.
    let job = FarmJob::new(Benchmark::Ocean, cfg(2, MechanismKind::Dfs));
    let via_farm = json::to_string(&job.simulate().to_value());
    let direct = serialised(&job.config, Benchmark::Ocean);
    assert_eq!(via_farm, direct);
}

#[test]
fn seed_changes_change_the_report() {
    // Sanity check that the determinism above is not vacuous: a
    // different workload seed must actually perturb the simulation.
    let config = cfg(2, MechanismKind::None);
    let mut spec = Benchmark::Fft.spec(2, Scale::Test);
    let baseline = Simulation::new(config.clone())
        .run_spec(&spec)
        .expect("run");
    spec.seed ^= 0xdead_beef;
    let reseeded = Simulation::new(config).run_spec(&spec).expect("run");
    assert_ne!(
        json::to_string(&baseline.to_value()),
        json::to_string(&reseeded.to_value())
    );
}
