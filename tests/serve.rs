//! Integration tests for `ptb-serve`: the HTTP batch lifecycle end to
//! end, byte-stability of served reports, the dedup dispositions, the
//! wire protocol's error paths, and graceful degradation when the
//! store underneath is fault-injected.

use ptb_core::{MechanismKind, SimConfig};
use ptb_farm::{ChaosConfig, ChaosIo, EntryFormat, Farm, FarmJob};
use ptb_serve::{http_call, ServeConfig, ServerConfig};
use ptb_workloads::{Benchmark, Scale};
use serde::{json, Map, Serialize, Value};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn job(bench: Benchmark, mech: MechanismKind, n_cores: usize) -> FarmJob {
    FarmJob::new(
        bench,
        SimConfig {
            n_cores,
            scale: Scale::Test,
            mechanism: mech,
            ..SimConfig::default()
        },
    )
}

fn serve_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptb-serve-it-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn submit_body(jobs: &[FarmJob]) -> String {
    let mut body = Map::new();
    body.insert(
        "jobs".into(),
        Value::Array(jobs.iter().map(|j| j.to_value()).collect()),
    );
    json::to_string(&Value::Object(body))
}

fn get_json(addr: SocketAddr, path: &str) -> (u16, Value) {
    let (status, body) = http_call(addr, "GET", path, None).expect("GET round-trip");
    let v = json::parse(&body).unwrap_or(Value::Null);
    (status, v)
}

fn poll_batch(addr: SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, v) = get_json(addr, &format!("/v1/batches/{id}"));
        assert_eq!(status, 200);
        if v.as_object()
            .and_then(|o| o.get("done"))
            .and_then(Value::as_bool)
            .unwrap_or(false)
        {
            return;
        }
        assert!(Instant::now() < deadline, "batch {id} did not settle");
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn str_field(v: &Value, name: &str) -> String {
    v.as_object()
        .and_then(|o| o.get(name))
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_owned()
}

#[test]
fn batch_lifecycle_serves_byte_identical_reports_and_dedups_resubmits() {
    let dir = serve_dir("lifecycle");
    let farm = Arc::new(Farm::open(dir.join("farm")).expect("open farm"));
    let handle = ptb_serve::start(
        farm,
        "127.0.0.1:0",
        ServeConfig {
            sim_threads: 2,
            ..ServeConfig::default()
        },
        ServerConfig::default(),
    )
    .expect("start server");
    let addr = handle.addr();

    let jobs = vec![
        job(Benchmark::Fft, MechanismKind::None, 2),
        job(Benchmark::Radix, MechanismKind::None, 2),
    ];
    let (status, resp) =
        http_call(addr, "POST", "/v1/batches", Some(&submit_body(&jobs))).expect("submit");
    assert_eq!(status, 200, "{resp}");
    let v = json::parse(&resp).expect("submit JSON");
    let batch_id = str_field(&v, "batch");
    let resolved = v
        .as_object()
        .and_then(|o| o.get("jobs"))
        .and_then(|j| j.as_array().cloned())
        .expect("resolved jobs");
    assert_eq!(resolved.len(), 2);
    for r in &resolved {
        assert_eq!(str_field(r, "disposition"), "enqueued");
    }
    poll_batch(addr, &batch_id);

    // Served reports are byte-identical to direct in-process runs.
    for j in &jobs {
        let key = j.key();
        let (status, served) =
            http_call(addr, "GET", &format!("/v1/reports/{key}"), None).expect("fetch");
        assert_eq!(status, 200, "{served}");
        assert_eq!(
            served,
            json::to_string(&j.simulate().to_value()),
            "served report differs from a direct run for {}",
            j.label()
        );
    }

    // Identical re-submit: everything cached, executor untouched.
    let (status, resp) =
        http_call(addr, "POST", "/v1/batches", Some(&submit_body(&jobs))).expect("re-submit");
    assert_eq!(status, 200);
    let v = json::parse(&resp).expect("re-submit JSON");
    for r in v
        .as_object()
        .and_then(|o| o.get("jobs"))
        .and_then(|j| j.as_array().cloned())
        .expect("resolved jobs")
    {
        assert_eq!(str_field(&r, "disposition"), "cached");
        assert_eq!(str_field(&r, "state"), "done");
    }
    let (_, metrics) = get_json(addr, "/v1/metrics");
    let counter = |name: &str| {
        metrics
            .as_object()
            .and_then(|o| o.get(name))
            .and_then(Value::as_f64)
            .unwrap_or(-1.0)
    };
    assert_eq!(counter("serve.completed"), 2.0, "two jobs simulated once");
    assert_eq!(counter("serve.hits"), 2.0, "re-submit fully cached");
    assert_eq!(counter("serve.failed"), 0.0);
    assert!(counter("serve.latency.report.p99_ms") >= 0.0);

    // Status reflects the settled registry and the populated store.
    let (status, sv) = get_json(addr, "/v1/status");
    assert_eq!(status, 200);
    let entries = sv
        .as_object()
        .and_then(|o| o.get("entries"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert_eq!(entries, 2);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fresh_server_serves_cold_store_and_shorthand_jobs() {
    let dir = serve_dir("coldstore");
    // A previous "process" populates the store directly.
    let seeded = job(Benchmark::Fft, MechanismKind::Dvfs, 2);
    let key = seeded.key();
    {
        let farm = Farm::open(dir.join("farm")).expect("open farm");
        farm.run_batch(std::slice::from_ref(&seeded), 1);
    }
    // A brand-new server over the same store answers from disk.
    let farm = Arc::new(
        Farm::open_with_io_format(
            dir.join("farm"),
            Arc::new(ptb_farm::RealIo),
            EntryFormat::Binary,
        )
        .expect("reopen farm"),
    );
    let handle = ptb_serve::start(
        farm,
        "127.0.0.1:0",
        ServeConfig::default(),
        ServerConfig::default(),
    )
    .expect("start server");
    let addr = handle.addr();

    // Report of a never-submitted key comes straight from the store.
    let (status, served) =
        http_call(addr, "GET", &format!("/v1/reports/{key}"), None).expect("fetch");
    assert_eq!(status, 200, "{served}");
    assert_eq!(served, json::to_string(&seeded.simulate().to_value()));
    let (status, jv) = get_json(addr, &format!("/v1/jobs/{key}"));
    assert_eq!(status, 200);
    assert_eq!(str_field(&jv, "state"), "done");

    // The shorthand wire form resolves to the same content key.
    let shorthand =
        r#"{"jobs": [{"bench": "fft", "mechanism": "Dvfs", "n_cores": 2, "scale": "Test"}]}"#;
    let (status, resp) =
        http_call(addr, "POST", "/v1/batches", Some(shorthand)).expect("shorthand submit");
    assert_eq!(status, 200, "{resp}");
    let v = json::parse(&resp).expect("shorthand JSON");
    let resolved = v
        .as_object()
        .and_then(|o| o.get("jobs"))
        .and_then(|j| j.as_array().cloned())
        .expect("resolved jobs");
    assert_eq!(str_field(&resolved[0], "key"), key);
    assert_eq!(str_field(&resolved[0], "disposition"), "cached");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_errors_are_json_and_never_kill_the_server() {
    let dir = serve_dir("protocol");
    let farm = Arc::new(Farm::open(dir.join("farm")).expect("open farm"));
    let handle = ptb_serve::start(
        farm,
        "127.0.0.1:0",
        ServeConfig::default(),
        ServerConfig::default(),
    )
    .expect("start server");
    let addr = handle.addr();

    for (method, path, body, want) in [
        ("GET", "/nope", None, 404),
        ("GET", "/v1/batches/b999", None, 404),
        ("GET", "/v1/jobs/deadbeef", None, 404),
        ("GET", "/v1/reports/deadbeef", None, 404),
        ("POST", "/v1/batches", Some("not json"), 400),
        ("POST", "/v1/batches", Some("{\"jobs\": []}"), 400),
        (
            "POST",
            "/v1/batches",
            Some("{\"jobs\": [{\"bench\": \"nosuch\"}]}"),
            400,
        ),
    ] {
        let (status, resp) = http_call(addr, method, path, body).expect("round-trip");
        assert_eq!(status, want, "{method} {path}: {resp}");
        let v = json::parse(&resp).expect("errors are JSON");
        assert!(
            !str_field(&v, "error").is_empty(),
            "error body has an error field: {resp}"
        );
    }
    let (status, _) = get_json(addr, "/healthz");
    assert_eq!(status, 200, "server still healthy after abuse");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_faulted_store_degrades_gracefully_and_server_stays_up() {
    let dir = serve_dir("chaos");
    // Heavy fault injection on every store/journal operation.
    let io = Arc::new(ChaosIo::new(ChaosConfig::uniform(7, 0.9)));
    let farm = Arc::new(
        Farm::open_with_io_format(dir.join("farm"), io, EntryFormat::Binary).expect("open farm"),
    );
    let handle = ptb_serve::start(
        farm.clone(),
        "127.0.0.1:0",
        ServeConfig {
            sim_threads: 2,
            job_timeout: Some(Duration::from_secs(120)),
            ..ServeConfig::default()
        },
        ServerConfig::default(),
    )
    .expect("start server");
    let addr = handle.addr();

    let jobs = vec![
        job(Benchmark::Fft, MechanismKind::None, 2),
        job(Benchmark::Radix, MechanismKind::None, 2),
    ];
    let (status, resp) =
        http_call(addr, "POST", "/v1/batches", Some(&submit_body(&jobs))).expect("submit");
    assert_eq!(status, 200, "{resp}");
    let batch_id = str_field(&json::parse(&resp).expect("JSON"), "batch");
    poll_batch(addr, &batch_id);

    // Every job settled one way or the other; any failure is
    // quarantined with its full replayable config and the server is
    // still answering.
    let (_, bv) = get_json(addr, &format!("/v1/batches/{batch_id}"));
    let settled = bv
        .as_object()
        .and_then(|o| o.get("settled"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert_eq!(settled, 2, "all jobs settled under chaos: {bv:?}");
    let (_, metrics) = get_json(addr, "/v1/metrics");
    let failed = metrics
        .as_object()
        .and_then(|o| o.get("serve.failed"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    let quarantined = farm.quarantine().load().unwrap_or_default();
    assert_eq!(
        quarantined.len() as f64,
        failed,
        "every failed job is quarantined, replayably"
    );
    for q in &quarantined {
        assert!(!q.key.is_empty());
        assert!(
            FarmJob::new(q.job.bench, q.job.config.clone()).key() == q.key,
            "quarantine entry replays to the same key"
        );
    }
    let (status, _) = get_json(addr, "/healthz");
    assert_eq!(status, 200, "server survives a faulty store");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
