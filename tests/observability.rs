//! Observability-layer integration tests: serde round trips for the
//! report types, a golden parse-back of the Chrome trace export, and a
//! full observed simulation through `ObsStack`.

use ptb_core::trace::PowerTrace;
use ptb_core::{MechanismKind, PtbPolicy, RunReport, SimConfig, Simulation};
use ptb_obs::{NullObserver, ObsStack, SimObserver};
use ptb_workloads::{Benchmark, Scale};
use serde::json;

fn cfg(n: usize, mech: MechanismKind) -> SimConfig {
    SimConfig {
        n_cores: n,
        scale: Scale::Test,
        mechanism: mech,
        ..SimConfig::default()
    }
}

fn ptb() -> MechanismKind {
    MechanismKind::PtbTwoLevel {
        policy: PtbPolicy::ToAll,
        relax: 0.0,
    }
}

#[test]
fn run_report_survives_json_round_trip() {
    let mut report = Simulation::new(SimConfig {
        capture_trace: true,
        ..cfg(2, ptb())
    })
    .run(Benchmark::Fft)
    .expect("run");
    report.extra_metrics.insert("test.metric".into(), 42.5);

    let s = json::to_string(&report);
    let back: RunReport = json::from_str(&s).expect("parse back");
    assert_eq!(back.benchmark, report.benchmark);
    assert_eq!(back.mechanism, report.mechanism);
    assert_eq!(back.cycles, report.cycles);
    assert_eq!(back.energy_tokens, report.energy_tokens);
    assert_eq!(back.cores.len(), report.cores.len());
    assert_eq!(back.cores[0].committed, report.cores[0].committed);
    assert_eq!(back.extra_metrics["test.metric"], 42.5);
    let t = report.trace.as_ref().expect("trace");
    let bt = back.trace.as_ref().expect("trace back");
    assert_eq!(bt.len(), t.len());
    assert_eq!(bt.chip, t.chip);
}

#[test]
fn run_report_without_extra_metrics_still_parses() {
    // Reports serialized before `extra_metrics` existed must load.
    let report = Simulation::new(cfg(2, MechanismKind::None))
        .run(Benchmark::Radix)
        .expect("run");
    let s = json::to_string(&report);
    let stripped = s.replace(",\"extra_metrics\":{}", "");
    assert_ne!(stripped, s, "field should have been present");
    let back: RunReport = json::from_str(&stripped).expect("parse without field");
    assert!(back.extra_metrics.is_empty());
    assert_eq!(back.cycles, report.cycles);
}

#[test]
fn power_trace_survives_json_round_trip() {
    let mut t = PowerTrace::new(2, 3, 100);
    for cycle in 0..30 {
        t.record(cycle, cycle as f64 * 1.5, &[0.5, 1.0]);
    }
    let s = json::to_string(&t);
    let back: PowerTrace = json::from_str(&s).expect("parse back");
    assert_eq!(back.stride, t.stride);
    assert_eq!(back.chip, t.chip);
    assert_eq!(back.per_core, t.per_core);
}

#[test]
fn chrome_trace_parses_back_with_expected_structure() {
    let mut stack = ObsStack::new().with_recorder(1 << 16);
    Simulation::new(cfg(2, ptb()))
        .run_observed(Benchmark::Fft, &mut stack)
        .expect("run");
    let rec = stack.recorder.as_ref().expect("recorder");
    assert!(!rec.is_empty(), "no events recorded");

    let parsed = json::parse(&rec.chrome_trace_json()).expect("valid JSON");
    let json::Value::Object(top) = parsed else {
        panic!("top level must be an object");
    };
    let json::Value::Array(events) = &top["traceEvents"] else {
        panic!("traceEvents must be an array");
    };
    assert!(!events.is_empty());
    // Every event carries the mandatory trace_event keys, and the
    // stream opens with process/thread metadata.
    let mut phases = std::collections::BTreeSet::new();
    for ev in events {
        let json::Value::Object(e) = ev else {
            panic!("event must be an object");
        };
        let json::Value::Str(ph) = &e["ph"] else {
            panic!("ph must be a string");
        };
        assert!(e.contains_key("name"));
        assert!(e.contains_key("pid"));
        phases.insert(ph.clone());
    }
    let json::Value::Object(first) = &events[0] else {
        unreachable!()
    };
    assert_eq!(first["ph"], json::Value::Str("M".into()));
    assert!(
        phases.contains("C"),
        "counter events expected, got {phases:?}"
    );
}

#[test]
fn observed_run_matches_unobserved_run() {
    // The observer must not perturb the simulation itself.
    let plain = Simulation::new(cfg(2, ptb()))
        .run(Benchmark::Ocean)
        .expect("run");
    let mut stack = ObsStack::new()
        .with_recorder(1 << 16)
        .with_counters()
        .with_audit(64);
    let observed = Simulation::new(cfg(2, ptb()))
        .run_observed(Benchmark::Ocean, &mut stack)
        .expect("run");
    assert_eq!(plain.cycles, observed.cycles);
    assert_eq!(plain.energy_tokens, observed.energy_tokens);
    assert_eq!(plain.committed(), observed.committed());
}

#[test]
fn full_stack_populates_counters_and_audit_passes() {
    let mut stack = ObsStack::new()
        .with_recorder(1 << 16)
        .with_counters()
        .with_audit(32);
    let mut report = Simulation::new(cfg(4, ptb()))
        .run_observed(Benchmark::Barnes, &mut stack)
        .expect("run");
    stack.merge_extra_metrics(&mut report.extra_metrics);

    let counters = stack.counters.as_ref().expect("counters");
    assert_eq!(counters.get("run.cycles"), Some(report.cycles as f64));
    assert_eq!(counters.get("run.n_cores"), Some(4.0));
    let energy = counters.get("run.energy_tokens").expect("energy counter");
    assert!((energy - report.energy_tokens).abs() < 1e-6 * report.energy_tokens);

    // The audit (token conservation + energy integral) ran and passed.
    let audit = stack.audit.as_ref().expect("audit");
    assert!(audit.checks() > 0);

    assert!(report.extra_metrics.contains_key("obs.events_recorded"));
    assert!(report.extra_metrics["obs.events_recorded"] >= 1.0);
}

#[test]
fn null_observer_is_disabled_at_compile_time() {
    fn enabled<O: SimObserver>() -> bool {
        O::ENABLED
    }
    assert!(!enabled::<NullObserver>());
    // And a run through it equals the plain entry point.
    let a = Simulation::new(cfg(2, MechanismKind::Dvfs))
        .run(Benchmark::Fft)
        .expect("run");
    let b = Simulation::new(cfg(2, MechanismKind::Dvfs))
        .run_observed(Benchmark::Fft, &mut NullObserver)
        .expect("run");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.energy_tokens, b.energy_tokens);
}
