//! `RunReport` forward/backward compatibility: JSON written before the
//! `extra_metrics` field existed, and JSON written by a *future* schema
//! with fields this build does not know, must both load without loss of
//! the known data and without panicking — otherwise a farm store could
//! not be shared across versions at all.

use ptb_core::budget::BudgetSpec;
use ptb_core::report::CoreReport;
use ptb_core::{MechanismKind, RunReport, SimConfig};
use ptb_farm::{Farm, FarmJob};
use ptb_power::PowerParams;
use ptb_uarch::CoreConfig;
use ptb_workloads::{Benchmark, Scale};
use serde::{json, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

fn sample_report(extra: bool) -> RunReport {
    let mut extra_metrics = BTreeMap::new();
    if extra {
        extra_metrics.insert("mech.dvfs_transitions".to_string(), 42.0);
        extra_metrics.insert("farm.note".to_string(), 0.5);
    }
    RunReport {
        benchmark: "fft".into(),
        mechanism: "base".into(),
        n_cores: 2,
        cycles: 1000,
        budget: BudgetSpec::new(&PowerParams::default(), &CoreConfig::default(), 2, 0.5),
        energy_tokens: 200.0,
        energy_joules: 1.5,
        aopb_tokens: 50.0,
        aopb_joules: 0.25,
        mean_power: 80.0,
        power_stddev: 4.5,
        cycles_over_budget: 100,
        max_temp_c: 71.25,
        mean_temp_c: 60.5,
        temp_stddev_c: 1.125,
        cores: vec![
            CoreReport {
                ctx_cycles: [600, 200, 100, 100],
                spin_cycles: 250,
                spin_tokens: 10.0,
                tokens: 100.0,
                committed: 900,
                mispredict_rate: 0.0625,
                ptht_error: 0.0078125,
            };
            2
        ],
        trace: None,
        extra_metrics,
    }
}

fn as_object(v: Value) -> serde::Map {
    match v {
        Value::Object(m) => m,
        other => panic!("expected object, got {other:?}"),
    }
}

#[test]
fn report_without_extra_metrics_field_still_loads() {
    // Simulates JSON written before `extra_metrics` existed.
    let mut obj = as_object(sample_report(false).to_value());
    assert!(obj.remove("extra_metrics").is_some());
    let back = RunReport::from_value(&Value::Object(obj)).expect("legacy JSON loads");
    assert!(back.extra_metrics.is_empty());
    assert_eq!(back.cycles, 1000);
    assert_eq!(back.cores.len(), 2);
}

#[test]
fn report_with_extra_metrics_round_trips_without_loss() {
    let report = sample_report(true);
    let text = json::to_string(&report.to_value());
    let back: RunReport = json::from_str(&text).expect("round trip");
    assert_eq!(back.to_value(), report.to_value(), "no field lost");
    assert_eq!(back.extra_metrics.get("mech.dvfs_transitions"), Some(&42.0));
}

#[test]
fn unknown_fields_are_tolerated_not_fatal() {
    // Simulates JSON written by a future schema: extra fields at both
    // the report and per-core level must be ignored, not a panic/error.
    let mut obj = as_object(sample_report(true).to_value());
    obj.insert("future_field".into(), Value::Str("ignore me".into()));
    obj.insert("schema_hint".into(), Value::U64(99));
    let cores = obj.get("cores").and_then(Value::as_array).unwrap().clone();
    let mut core0 = as_object(cores[0].clone());
    core0.insert("future_core_stat".into(), Value::F64(1.5));
    obj.insert(
        "cores".into(),
        Value::Array(vec![Value::Object(core0), cores[1].clone()]),
    );
    let back = RunReport::from_value(&Value::Object(obj)).expect("unknown fields ignored");
    assert_eq!(back.cycles, 1000);
    assert_eq!(back.cores[0].spin_cycles, 250);
}

#[test]
fn store_round_trip_preserves_reports_and_tolerates_unknown_envelope_fields() {
    let dir = std::env::temp_dir().join(format!("ptb-compat-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let farm = Farm::open(&dir).expect("open farm");
    let job = FarmJob::new(
        Benchmark::Fft,
        SimConfig {
            n_cores: 2,
            scale: Scale::Test,
            mechanism: MechanismKind::None,
            ..SimConfig::default()
        },
    );
    let key = job.key();
    let report = sample_report(true);
    farm.store().put(&key, &job, &report).expect("store");

    // Inject an unknown envelope field, as a future writer might.
    let path = farm.store().path_for(&key);
    let mut env = as_object(json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap());
    env.insert("written_by".into(), Value::Str("ptb-farm vNext".into()));
    std::fs::write(&path, json::to_string(&Value::Object(env))).unwrap();

    match farm.store().get(&key, &job) {
        ptb_farm::StoreLookup::Hit(back) => {
            assert_eq!(
                back.to_value(),
                report.to_value(),
                "lossless through the store"
            );
        }
        other => panic!("expected hit, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
