//! Integration tests for the `ptb-farm` subsystem: cold/warm caching,
//! in-batch dedup, crash/interrupt resume via the journal, and
//! integrity handling of corrupt or stale store entries.

use ptb_core::{MechanismKind, SimConfig};
use ptb_farm::{Farm, FarmJob};
use ptb_workloads::{Benchmark, Scale};
use serde::{json, Serialize};
use std::path::PathBuf;

fn job(bench: Benchmark, mech: MechanismKind, n_cores: usize) -> FarmJob {
    FarmJob::new(
        bench,
        SimConfig {
            n_cores,
            scale: Scale::Test,
            mechanism: mech,
            ..SimConfig::default()
        },
    )
}

fn farm_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptb-farm-it-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn cold_run_warm_run_and_in_batch_dedup() {
    let dir = farm_dir("coldwarm");
    // The same point submitted twice in one batch (as two figures
    // sharing a grid would) plus two distinct points.
    let batch = vec![
        job(Benchmark::Fft, MechanismKind::None, 2),
        job(Benchmark::Radix, MechanismKind::None, 2),
        job(Benchmark::Fft, MechanismKind::None, 2), // duplicate of [0]
        job(Benchmark::Fft, MechanismKind::Dvfs, 2),
    ];

    let cold_farm = Farm::open(&dir).expect("open");
    let cold = cold_farm.run_batch(&batch, 2);
    let s = cold_farm.stats();
    assert_eq!(s.misses, 3, "three unique points simulate");
    assert_eq!(s.deduped, 1, "duplicate shares its result");
    assert_eq!(s.hits, 0);
    assert_eq!(s.completed, 3);
    assert_eq!(cold_farm.store().len(), 3);
    assert_eq!(
        json::to_string(&cold[0].to_value()),
        json::to_string(&cold[2].to_value()),
        "dedup returns the same report"
    );
    assert!(
        cold_farm.pending().expect("journal readable").is_empty(),
        "clean finish leaves no pending jobs"
    );
    drop(cold_farm);

    // A fresh process over the same store: every point is a hit and the
    // reports serialise byte-identically to the cold run's.
    let warm_farm = Farm::open(&dir).expect("reopen");
    let warm = warm_farm.run_batch(&batch, 2);
    let s = warm_farm.stats();
    assert_eq!(s.hits, 3, "100% cache hits");
    assert_eq!(s.misses, 0, "zero simulations on the warm run");
    assert_eq!(s.deduped, 1);
    assert!((s.hit_rate_pct() - 100.0).abs() < 1e-12);
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            json::to_string(&c.to_value()),
            json::to_string(&w.to_value()),
            "cached report is byte-identical"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_sweep_resumes_exactly_the_remainder() {
    let dir = farm_dir("resume");
    let all = vec![
        job(Benchmark::Fft, MechanismKind::None, 2),
        job(Benchmark::Radix, MechanismKind::None, 2),
        job(Benchmark::Ocean, MechanismKind::None, 2),
    ];

    // Phase 1: a sweep that is "killed" after one job. Reconstruct the
    // on-disk state such a process leaves: all three jobs journalled as
    // scheduled, only the first completed and stored.
    {
        let farm = Farm::open(&dir).expect("open");
        farm.record_pending(&all).expect("journal submits");
        farm.run_batch(&all[..1], 1); // completes + journals done for job 0
        assert_eq!(farm.stats().completed, 1);
    } // process dies here

    // Phase 2: restart. The journal knows exactly what is owed.
    let farm = Farm::open(&dir).expect("reopen");
    let pending = farm.pending().expect("journal readable");
    assert_eq!(pending.len(), 2, "only the unfinished remainder is pending");
    let pending_benches: Vec<Benchmark> = pending.iter().map(|(_, j)| j.bench).collect();
    assert_eq!(pending_benches, vec![Benchmark::Radix, Benchmark::Ocean]);

    let resumed = farm.resume(2).expect("resume");
    assert_eq!(resumed.len(), 2, "resume ran exactly the remainder");
    let s = farm.stats();
    assert_eq!(s.resumed, 2);
    assert_eq!(s.misses, 2);
    assert_eq!(s.hits, 0, "the finished job is not touched");
    assert!(farm.pending().expect("journal readable").is_empty());

    // The full sweep is now pure hits — nothing re-simulates.
    let reports = farm.run_batch(&all, 2);
    assert_eq!(reports.len(), 3);
    let s = farm.stats();
    assert_eq!(s.hits, 3);
    assert_eq!(s.misses, 2, "unchanged: no new simulations");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_trusts_results_stored_before_the_crash_cut_the_done_record() {
    let dir = farm_dir("resume-stored");
    let j = job(Benchmark::Fft, MechanismKind::None, 2);
    {
        let farm = Farm::open(&dir).expect("open");
        farm.run_batch(std::slice::from_ref(&j), 1);
        // Re-submit without a matching done: as if the store write
        // landed but the process died before journalling completion.
        farm.record_pending(std::slice::from_ref(&j))
            .expect("submit");
    }
    let farm = Farm::open(&dir).expect("reopen");
    assert_eq!(farm.pending().expect("journal readable").len(), 1);
    let ran = farm.resume(1).expect("resume");
    assert!(ran.is_empty(), "stored result acknowledged, not re-run");
    assert_eq!(farm.stats().hits, 1);
    assert!(farm.pending().expect("journal readable").is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_and_stale_entries_are_dropped_and_rerun() {
    let dir = farm_dir("corrupt");
    let j = job(Benchmark::Fft, MechanismKind::None, 2);
    let farm = Farm::open(&dir).expect("open");
    let first = farm.run_batch(std::slice::from_ref(&j), 1);
    let key = j.key();
    let path = farm.store().path_for(&key);

    // Truncated/garbage JSON → dropped, re-simulated, re-stored.
    std::fs::write(&path, b"{\"store_format\":1,\"key").unwrap();
    let again = farm.run_batch(std::slice::from_ref(&j), 1);
    let s = farm.stats();
    assert_eq!(s.corrupt, 1, "corrupt entry detected");
    assert_eq!(s.misses, 2, "corrupt entry re-ran");
    assert_eq!(
        json::to_string(&first[0].to_value()),
        json::to_string(&again[0].to_value())
    );

    // Stale format version → same treatment.
    let text = std::fs::read_to_string(&path).unwrap();
    let current = format!("\"store_format\": {}", ptb_farm::STORE_FORMAT);
    assert!(text.contains(&current), "envelope carries current format");
    std::fs::write(&path, text.replacen(&current, "\"store_format\": 0", 1)).unwrap();
    farm.run_batch(std::slice::from_ref(&j), 1);
    let s = farm.stats();
    assert_eq!(s.corrupt, 2, "stale format detected");
    assert_eq!(s.misses, 3);

    // After the re-run the entry is healthy again: next lookup hits.
    farm.run_batch(std::slice::from_ref(&j), 1);
    assert_eq!(farm.stats().hits, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_scans_and_drops_bad_entries() {
    let dir = farm_dir("verify");
    let farm = Farm::open(&dir).expect("open");
    let jobs = vec![
        job(Benchmark::Fft, MechanismKind::None, 2),
        job(Benchmark::Radix, MechanismKind::None, 2),
    ];
    farm.run_batch(&jobs, 2);
    let (ok, dropped) = farm.verify().expect("verify");
    assert_eq!((ok, dropped), (2, 0));

    // Swap one entry's bytes for the other's: its embedded key no
    // longer hashes to the filename, which verify must catch.
    let a = farm.store().path_for(&jobs[0].key());
    let b = farm.store().path_for(&jobs[1].key());
    std::fs::copy(&b, &a).unwrap();
    let (ok, dropped) = farm.verify().expect("verify");
    assert_eq!((ok, dropped), (1, 1), "transplanted entry dropped");
    assert_eq!(farm.store().len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_traffic_survives_open_time_compaction() {
    let dir = farm_dir("traffic");
    let batch = vec![job(Benchmark::Fft, MechanismKind::None, 1)];

    let farm = Farm::open(&dir).expect("open");
    farm.run_batch(&batch, 1);
    drop(farm);

    // Reopening with nothing pending compacts the journal; the summed
    // stats must be carried across as one aggregate line, not wiped.
    let farm = Farm::open(&dir).expect("reopen");
    let t = farm.journal_stats().expect("stats readable");
    assert_eq!(t.misses, 1, "cold traffic survives compaction");
    assert_eq!(t.completed, 1);
    assert_eq!(t.hits, 0);
    farm.run_batch(&batch, 1);
    drop(farm);

    let farm = Farm::open(&dir).expect("reopen again");
    let t = farm.journal_stats().expect("stats readable");
    assert_eq!(t.hits, 1, "warm traffic accumulates on top");
    assert_eq!(t.misses, 1);
    std::fs::remove_dir_all(&dir).ok();
}
