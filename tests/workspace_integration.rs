//! Workspace-level integration tests: exercise the full public API surface
//! the way the examples and the experiment harness do.

use ptb_core::report::{normalized_aopb_pct, normalized_energy_pct, slowdown_pct};
use ptb_core::{MechanismKind, PtbConfig, PtbPolicy, SimConfig, Simulation};
use ptb_isa::{BlockGenConfig, LockId};
use ptb_metrics::{cores_within_tdp, mean, Table};
use ptb_workloads::{
    stmt::{flatten, Stmt},
    Benchmark, Scale, WorkloadSpec,
};

fn cfg(n: usize, mech: MechanismKind) -> SimConfig {
    SimConfig {
        n_cores: n,
        scale: Scale::Test,
        mechanism: mech,
        ..SimConfig::default()
    }
}

#[test]
fn every_benchmark_runs_to_completion_at_two_cores() {
    for bench in Benchmark::ALL {
        let r = Simulation::new(cfg(2, MechanismKind::None))
            .run(bench)
            .unwrap_or_else(|e| panic!("{bench}: {e}"));
        assert!(r.cycles > 0, "{bench} produced an empty run");
        assert!(r.committed() > 0);
        assert!(r.energy_tokens > 0.0);
        // Every thread must have committed work.
        for (i, c) in r.cores.iter().enumerate() {
            assert!(c.committed > 0, "{bench} core {i} committed nothing");
        }
    }
}

#[test]
fn report_feeds_metrics_pipeline() {
    let base = Simulation::new(cfg(2, MechanismKind::None))
        .run(Benchmark::X264)
        .expect("run");
    let mech = Simulation::new(cfg(2, MechanismKind::Dvfs))
        .run(Benchmark::X264)
        .expect("run");
    // The three normalisations the figures use are finite and consistent.
    let e = normalized_energy_pct(&base, &mech);
    let a = normalized_aopb_pct(&base, &mech);
    let s = slowdown_pct(&base, &mech);
    assert!(e.is_finite() && a.is_finite() && s.is_finite());
    assert!(a >= 0.0, "normalized AoPB cannot be negative");
    // And they compose into the table/CSV layer without panicking.
    let mut t = Table::new("smoke", &["bench", "energy", "aopb", "slowdown"]);
    t.row_f(&mech.benchmark, &[e, a, s], 2);
    let txt = t.to_text();
    assert!(txt.contains("x264"));
    assert!(t.to_csv().lines().count() >= 3);
    // Mean over a column is what the Avg. rows use.
    assert!(mean(&[e, a]).is_finite());
}

#[test]
fn custom_workload_through_public_api() {
    // A user-authored workload: producer/consumer around one lock.
    let program_a = flatten(&[
        Stmt::Compute {
            profile: 0,
            count: 400,
        },
        Stmt::Repeat {
            times: 3,
            body: vec![
                Stmt::Lock(LockId(0)),
                Stmt::Compute {
                    profile: 0,
                    count: 50,
                },
                Stmt::Unlock(LockId(0)),
            ],
        },
    ]);
    let spec = WorkloadSpec {
        name: "custom".into(),
        programs: vec![program_a.clone(), program_a],
        profiles: vec![BlockGenConfig::default()],
        lock_kind: Default::default(),
        seed: 1,
    };
    let r = Simulation::new(cfg(
        2,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToOne,
            relax: 0.0,
        },
    ))
    .run_spec(&spec)
    .expect("run");
    assert_eq!(r.benchmark, "custom");
    // Both threads acquired the lock 3 times each; the breakdown must show
    // some lock activity.
    assert!(r.breakdown_frac()[1] > 0.0 || r.breakdown_frac()[2] > 0.0);
}

#[test]
fn ptb_config_knobs_are_respected() {
    // A pessimistic 10x balancer latency must not break anything (paper
    // §III.E.2 tests a pessimistic 10-cycle delay).
    let mut c = cfg(
        2,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToAll,
            relax: 0.0,
        },
    );
    c.ptb = PtbConfig {
        latency_override: Some(30),
        wire_bits: 2,
        overhead_frac: 0.02,
        ..PtbConfig::default()
    };
    let r = Simulation::new(c).run(Benchmark::Watersp).expect("run");
    assert!(r.cycles > 0);
}

#[test]
fn tdp_math_consumes_measured_errors() {
    let base = Simulation::new(cfg(2, MechanismKind::None))
        .run(Benchmark::Swaptions)
        .expect("run");
    let ptb = Simulation::new(cfg(
        2,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::Dynamic,
            relax: 0.0,
        },
    ))
    .run(Benchmark::Swaptions)
    .expect("run");
    let err = normalized_aopb_pct(&base, &ptb) / 100.0;
    let cores = cores_within_tdp(100.0, 3.125, err);
    assert!(
        cores >= 16,
        "even a poor mechanism fits the original 16 cores, got {cores}"
    );
    assert!(cores <= 32, "cannot beat the ideal packing");
}

#[test]
fn mechanisms_do_not_change_architectural_work() {
    // Power control changes *when* things happen, never *what* executes:
    // committed instruction counts are identical across mechanisms.
    let count = |mech| {
        Simulation::new(cfg(2, mech))
            .run(Benchmark::Blackscholes)
            .expect("run")
            .committed()
    };
    let base = count(MechanismKind::None);
    // Blackscholes has (almost) no spinning, so committed counts must be
    // very close (spin iterations can differ slightly with timing).
    let dvfs = count(MechanismKind::Dvfs);
    let ptb = count(MechanismKind::PtbTwoLevel {
        policy: PtbPolicy::ToAll,
        relax: 0.0,
    });
    // Compute work is identical; only spin iterations at the final
    // barrier vary with timing.
    let tol = base / 20; // 5%
    assert!(
        dvfs.abs_diff(base) <= tol,
        "DVFS changed work: {base} vs {dvfs}"
    );
    assert!(
        ptb.abs_diff(base) <= tol,
        "PTB changed work: {base} vs {ptb}"
    );
}

#[test]
fn core_count_scaling_shows_more_spinning() {
    // Figure 3's headline: spinning grows with the core count.
    let spin_frac = |n: usize| {
        let r = Simulation::new(cfg(n, MechanismKind::None))
            .run(Benchmark::Radix)
            .expect("run");
        let spin: u64 = r.cores.iter().map(|c| c.spin_cycles).sum();
        spin as f64 / (r.cycles as f64 * n as f64)
    };
    let at2 = spin_frac(2);
    let at8 = spin_frac(8);
    assert!(
        at8 > at2,
        "radix spinning must grow with cores: 2c {at2:.3} vs 8c {at8:.3}"
    );
}

#[test]
fn spin_gated_ptb_saves_energy_on_contended_workload() {
    // The paper's future-work extension: gating detected spinners should
    // save energy relative to plain PTB on a lock-heavy benchmark.
    let bench = Benchmark::Unstructured;
    let ptb = Simulation::new(cfg(
        4,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToAll,
            relax: 0.0,
        },
    ))
    .run(bench)
    .expect("run");
    let gated = Simulation::new(cfg(
        4,
        MechanismKind::PtbSpinGate {
            policy: PtbPolicy::ToAll,
            relax: 0.0,
        },
    ))
    .run(bench)
    .expect("run");
    assert!(
        gated.energy_tokens <= ptb.energy_tokens * 1.02,
        "spin gating must not cost energy: {} vs {}",
        gated.energy_tokens,
        ptb.energy_tokens
    );
    assert!(gated.cycles > 0);
}

#[test]
fn clustered_balancer_runs_a_32_core_cmp() {
    // §III.E.2's scalability proposal: replicate the balancer per group of
    // 16 cores for CMPs beyond the paper's sizes.
    let mut c = cfg(
        32,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToAll,
            relax: 0.0,
        },
    );
    c.ptb.cluster_size = Some(16);
    let r = Simulation::new(c).run(Benchmark::Watersp).expect("run");
    assert_eq!(r.n_cores, 32);
    assert!(r.committed() > 0);
    // All 32 threads finished the same program.
    for (i, core) in r.cores.iter().enumerate() {
        assert!(core.committed > 0, "core {i} idle");
    }
}
