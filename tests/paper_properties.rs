//! Paper-shape property tests: the qualitative claims of the evaluation
//! section must hold on small runs. These are the "does the reproduction
//! reproduce" gates (see EXPERIMENTS.md for the full-scale numbers).

use ptb_core::report::normalized_aopb_pct;
use ptb_core::{MechanismKind, PtbPolicy, SimConfig, Simulation};
use ptb_workloads::{Benchmark, Scale};

fn run(n: usize, bench: Benchmark, mech: MechanismKind) -> ptb_core::RunReport {
    let cfg = SimConfig {
        n_cores: n,
        scale: Scale::Test,
        mechanism: mech,
        ..SimConfig::default()
    };
    Simulation::new(cfg).run(bench).expect("run")
}

/// §IV.A headline: PTB matches the budget more accurately than DVFS and
/// DFS on a lock/barrier-heavy workload.
#[test]
fn ptb_beats_dvfs_and_dfs_on_accuracy() {
    let bench = Benchmark::Waternsq;
    let base = run(4, bench, MechanismKind::None);
    let dvfs = normalized_aopb_pct(&base, &run(4, bench, MechanismKind::Dvfs));
    let dfs = normalized_aopb_pct(&base, &run(4, bench, MechanismKind::Dfs));
    let ptb = normalized_aopb_pct(
        &base,
        &run(
            4,
            bench,
            MechanismKind::PtbTwoLevel {
                policy: PtbPolicy::ToAll,
                relax: 0.0,
            },
        ),
    );
    assert!(ptb < dvfs, "PTB {ptb:.1}% must beat DVFS {dvfs:.1}%");
    assert!(ptb < dfs, "PTB {ptb:.1}% must beat DFS {dfs:.1}%");
}

/// §II.A: DFS saves less power than DVFS at the same frequency ladder, so
/// it must be *less* accurate (higher AoPB) for the same control law.
#[test]
fn dfs_is_less_accurate_than_dvfs() {
    let bench = Benchmark::Swaptions;
    let base = run(4, bench, MechanismKind::None);
    let dvfs = normalized_aopb_pct(&base, &run(4, bench, MechanismKind::Dvfs));
    let dfs = normalized_aopb_pct(&base, &run(4, bench, MechanismKind::Dfs));
    assert!(dfs >= dvfs, "DFS {dfs:.1}% cannot beat DVFS {dvfs:.1}%");
}

/// §IV.C: relaxing the accuracy constraint must not *increase* energy.
#[test]
fn relaxed_ptb_trades_accuracy_for_energy() {
    let bench = Benchmark::Barnes;
    let strict = run(
        4,
        bench,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToAll,
            relax: 0.0,
        },
    );
    let relaxed = run(
        4,
        bench,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::ToAll,
            relax: 0.3,
        },
    );
    // Relaxation throttles later, so it cannot be slower than strict PTB by
    // more than noise.
    assert!(
        relaxed.cycles <= strict.cycles + strict.cycles / 20,
        "relaxed PTB should not run slower: {} vs {}",
        relaxed.cycles,
        strict.cycles
    );
}

/// §III.B: the paper's < 1 % figure is the error of quantising
/// per-instruction *base* power into 8 k-means classes versus exact
/// joules — in this reproduction the class table is the ground truth, so
/// that error is zero by construction. What we measure here is a harsher
/// quantity the paper does not report: the PTHT's last-execution
/// *prediction* error, which includes ROB-residency variance (cache
/// hits/misses, queueing). It must stay bounded so the fetch-time power
/// estimate remains usable.
#[test]
fn ptht_prediction_error_is_bounded() {
    let r = run(2, Benchmark::Swaptions, MechanismKind::None);
    for (i, c) in r.cores.iter().enumerate() {
        assert!(
            c.ptht_error < 0.80,
            "core {i} PTHT relative prediction error {:.3} too high",
            c.ptht_error
        );
        assert!(c.ptht_error.is_finite());
    }
}

/// Figure 4's premise: spin power alone is a small slice of total power —
/// too little to meet a 50 % budget by spin-gating only (the paper's
/// argument for *general* balancing).
#[test]
fn spin_power_alone_cannot_match_the_budget() {
    let r = run(4, Benchmark::Fluidanimate, MechanismKind::None);
    let spin = r.spin_power_frac();
    assert!(
        spin < 0.5,
        "spin power should be a minority share, got {spin:.2}"
    );
    // But the budget deficit is real: the baseline spends time over budget.
    assert!(r.over_budget_frac() > 0.0);
}

/// PTB is "transparent for thread-independent workloads" (§I): on a
/// contention-free benchmark it behaves like the 2-level baseline, within
/// noise, because there are rarely donors.
#[test]
fn ptb_is_transparent_without_contention() {
    let bench = Benchmark::Swaptions;
    let base = run(4, bench, MechanismKind::None);
    let two = normalized_aopb_pct(&base, &run(4, bench, MechanismKind::TwoLevel));
    let ptb = normalized_aopb_pct(
        &base,
        &run(
            4,
            bench,
            MechanismKind::PtbTwoLevel {
                policy: PtbPolicy::ToAll,
                relax: 0.0,
            },
        ),
    );
    // PTB should be at least as accurate; per-cycle enforcement and the
    // occasional memory-stall donor keep it ahead or equal.
    assert!(
        ptb <= two + 15.0,
        "PTB ({ptb:.1}) far off 2level ({two:.1}) without contention"
    );
}

/// The power std-dev claim: PTB holds the chip steadier around the budget
/// than uncontrolled execution.
#[test]
fn ptb_reduces_power_variance() {
    let bench = Benchmark::Barnes;
    let base = run(4, bench, MechanismKind::None);
    let ptb = run(
        4,
        bench,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::Dynamic,
            relax: 0.0,
        },
    );
    assert!(
        ptb.power_stddev < base.power_stddev,
        "PTB stddev {:.0} must undercut baseline {:.0}",
        ptb.power_stddev,
        base.power_stddev
    );
}

/// Conclusion-section claim: PTB's accuracy yields "a more stable
/// temperature over execution time". The lumped-RC thermal model must
/// show a lower per-core temperature standard deviation under PTB than
/// without power control.
#[test]
fn ptb_stabilises_temperature() {
    let bench = Benchmark::Barnes;
    let base = run(4, bench, MechanismKind::None);
    let ptb = run(
        4,
        bench,
        MechanismKind::PtbTwoLevel {
            policy: PtbPolicy::Dynamic,
            relax: 0.0,
        },
    );
    assert!(
        ptb.temp_stddev_c <= base.temp_stddev_c,
        "PTB temp stddev {:.3} must not exceed baseline {:.3}",
        ptb.temp_stddev_c,
        base.temp_stddev_c
    );
    assert!(
        ptb.max_temp_c <= base.max_temp_c + 0.5,
        "PTB must not raise peak temperature"
    );
    // Temperatures must be physically plausible.
    assert!(base.mean_temp_c > 40.0 && base.mean_temp_c < 110.0);
}
