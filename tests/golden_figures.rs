//! Golden-figure regression tests.
//!
//! The committed CSVs under `tests/goldens/` pin the figure binaries'
//! output at test scale: simulator changes that shift any reported
//! number show up as a byte diff here, with the golden regenerable by
//! re-running the command in the failure message. Figure 2 is cheap
//! enough (4-core, test scale) to regenerate in-tree three ways — with
//! the farm disabled, against a cold farm store, and against the warm
//! store — which also pins that the caching layer is invisible to the
//! output. Figure 9 (336 simulations) is pinned by the release-mode CI
//! farm smoke step, which `cmp`s its CSVs against the same goldens.

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(name)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptb-golden-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run `fig02_naive_budget` with a scrubbed environment: fixed scale
/// and core count, output into `out`, farm either disabled or rooted at
/// `farm` so ambient `PTB_*` settings cannot leak into the goldens.
fn run_fig02(out: &Path, farm: Option<&Path>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig02_naive_budget"));
    for var in [
        "PTB_SCALE",
        "PTB_JOBS",
        "PTB_OUT",
        "PTB_CORES",
        "PTB_FARM_DIR",
        "PTB_NO_CACHE",
    ] {
        cmd.env_remove(var);
    }
    cmd.env("PTB_SCALE", "test")
        .env("PTB_CORES", "4")
        .env("PTB_OUT", out);
    match farm {
        Some(dir) => cmd.env("PTB_FARM_DIR", dir),
        None => cmd.env("PTB_NO_CACHE", "1"),
    };
    let status = cmd
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn fig02_naive_budget");
    assert!(status.success(), "fig02_naive_budget exited with {status}");
}

fn assert_matches_golden(out: &Path, name: &str, how: &str) {
    let got = std::fs::read_to_string(out.join(name)).unwrap();
    let want = std::fs::read_to_string(golden(name)).unwrap();
    assert!(
        got == want,
        "{name} ({how}) diverged from tests/goldens/{name}; if the change is \
         intended, regenerate with:\n  PTB_SCALE=test PTB_CORES=4 PTB_NO_CACHE=1 \
         PTB_OUT=tests/goldens cargo run --release --bin fig02_naive_budget\ngot:\n{got}"
    );
}

#[test]
fn fig02_output_matches_goldens_cached_and_uncached() {
    let fig02_csvs = ["fig02_energy.csv", "fig02_aopb.csv"];

    // Farm disabled: pure simulation output.
    let no_cache = tmp_dir("fig02-nocache");
    run_fig02(&no_cache, None);
    for name in fig02_csvs {
        assert_matches_golden(&no_cache, name, "no cache");
    }

    // Cold farm store (simulates + records), then warm (loads only):
    // the cache layer must be byte-invisible.
    let farm = tmp_dir("fig02-farm");
    let cold = tmp_dir("fig02-cold");
    run_fig02(&cold, Some(&farm));
    for name in fig02_csvs {
        assert_matches_golden(&cold, name, "cold farm");
    }
    let warm = tmp_dir("fig02-warm");
    run_fig02(&warm, Some(&farm));
    for name in fig02_csvs {
        assert_matches_golden(&warm, name, "warm farm");
    }

    for dir in [no_cache, farm, cold, warm] {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// The fig09 goldens are exercised by CI in release mode (the farm
/// smoke step), but their presence and shape are pinned here so a
/// botched regeneration cannot silently empty them.
#[test]
fn fig09_goldens_are_well_formed() {
    for (name, header_prefix) in [
        ("fig09_energy.csv", "# Figure 9 (left)"),
        ("fig09_aopb.csv", "# Figure 9 (right)"),
    ] {
        let text = std::fs::read_to_string(golden(name)).unwrap();
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        assert!(
            header.starts_with(header_prefix),
            "{name}: unexpected header {header:?}"
        );
        let columns = lines.next().unwrap_or_default();
        assert_eq!(
            columns, "config,DVFS,DFS,2level,PTB+2level",
            "{name}: unexpected column row"
        );
        let rows: Vec<&str> = lines.collect();
        assert!(
            rows.len() >= 6,
            "{name}: expected ≥6 config rows, found {}",
            rows.len()
        );
        for row in rows {
            assert_eq!(row.split(',').count(), 5, "{name}: malformed row {row:?}");
        }
    }
}
