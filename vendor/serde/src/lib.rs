//! Offline drop-in subset of `serde` (see `vendor/README.md`).
//!
//! Real serde is a zero-copy framework over generic `Serializer` /
//! `Deserializer` visitors. This stub keeps the *user-facing surface*
//! this workspace relies on — `#[derive(Serialize, Deserialize)]`,
//! `#[serde(default)]`, and JSON round-trips — but routes everything
//! through an owned intermediate [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`Value`];
//! * [`json`] converts between [`Value`] and JSON text.
//!
//! The derive macros live in the sibling `serde_derive` stub and are
//! re-exported here under the `derive` feature, exactly like upstream.
//! Externally-tagged enum representation matches serde_json's default
//! (`"Variant"` for unit variants, `{"Variant": payload}` otherwise),
//! so files written by this stub stay readable by real serde_json.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: ordered map for deterministic output.
pub type Map = BTreeMap<String, Value>;

/// An owned, JSON-shaped data tree — the interchange format between
/// [`Serialize`], [`Deserialize`] and the [`json`] text engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative (or explicitly signed) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with string keys.
    Object(Map),
}

impl Value {
    /// Borrow as an object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `u64` (accepts `U64`, and non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64` (accepts `I64`, and in-range `U64`).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Index into an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Short tag naming the variant, used in error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Error with a custom message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X, got <kind>" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }

    /// Missing required field while deserializing a struct.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` for `{ty}`"))
    }

    /// Unknown enum variant name.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error(format!("unknown variant `{variant}` for enum `{ty}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Render `self` as a data tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a data tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected(stringify!($t), v))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::expected(stringify!($t), v))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::expected("f32", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        if items.len() != N {
            return Err(Error::new(format!(
                "expected array of {N} elements, got {}",
                items.len()
            )));
        }
        match items.try_into() {
            Ok(arr) => Ok(arr),
            Err(_) => unreachable!("length checked above"),
        }
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Deserialize> Deserialize for BTreeMap<String, T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, v)| T::from_value(v).map(|t| (k.clone(), t)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                let a = v.as_array().ok_or_else(|| Error::expected("tuple array", v))?;
                if a.len() != LEN {
                    return Err(Error::new(format!(
                        "expected tuple of {LEN} elements, got {}", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// JSON text conversion for [`Value`] trees (subset of `serde_json`).
pub mod json {
    use super::{Deserialize, Error, Serialize};
    pub use super::{Map, Value};

    /// Serialize `value` to compact JSON.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&value.to_value(), &mut out, None, 0);
        out
    }

    /// Serialize `value` to human-readable, 2-space-indented JSON.
    pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&value.to_value(), &mut out, Some(2), 0);
        out
    }

    /// Deserialize a `T` from JSON text.
    pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
        T::from_value(&parse(s)?)
    }

    /// Parse JSON text into a [`Value`] tree.
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }

    fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => {
                if x.is_finite() {
                    out.push_str(&x.to_string());
                } else {
                    // Match serde_json: non-finite floats become null.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_value(item, out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, item)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(item, out, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * depth {
                out.push(' ');
            }
        }
    }

    fn write_string(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn eat(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::new(format!(
                    "expected `{}` at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn eat_keyword(&mut self, kw: &str) -> bool {
            if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
                Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(Error::new(format!(
                    "unexpected character at byte {}",
                    self.pos
                ))),
            }
        }

        fn array(&mut self) -> Result<Value, Error> {
            self.eat(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `]` at byte {}",
                            self.pos
                        )))
                    }
                }
            }
        }

        fn object(&mut self) -> Result<Value, Error> {
            self.eat(b'{')?;
            let mut map = Map::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                self.skip_ws();
                let val = self.value()?;
                map.insert(key, val);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `}}` at byte {}",
                            self.pos
                        )))
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.eat(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(Error::new("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                self.pos += 1;
                                let hi = self.hex4()?;
                                let c = if (0xD800..0xDC00).contains(&hi) {
                                    // Surrogate pair: expect \uXXXX low half.
                                    if !(self.eat(b'\\').is_ok() && self.eat(b'u').is_ok()) {
                                        return Err(Error::new("lone high surrogate"));
                                    }
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + lo.checked_sub(0xDC00)
                                            .ok_or_else(|| Error::new("invalid low surrogate"))?;
                                    char::from_u32(code)
                                } else {
                                    char::from_u32(hi)
                                };
                                out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                                // hex4 leaves pos past the digits; skip the
                                // shared `pos += 1` below.
                                continue;
                            }
                            _ => return Err(Error::new("invalid escape")),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so
                        // slicing on char boundaries is safe via chars()).
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| Error::new("invalid utf-8"))?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, Error> {
            let end = self.pos + 4;
            if end > self.bytes.len() {
                return Err(Error::new("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&self.bytes[self.pos..end])
                .map_err(|_| Error::new("invalid \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
            self.pos = end;
            Ok(v)
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut is_float = false;
            while let Some(c) = self.peek() {
                match c {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::new("invalid number"))?;
            if is_float {
                text.parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))
            } else if text.starts_with('-') {
                text.parse::<i64>()
                    .map(Value::I64)
                    .or_else(|_| text.parse::<f64>().map(Value::F64))
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))
            } else {
                text.parse::<u64>()
                    .map(Value::U64)
                    .or_else(|_| text.parse::<f64>().map(Value::F64))
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_json_round_trip() {
        let mut obj = Map::new();
        obj.insert("pi".into(), Value::F64(3.25));
        obj.insert("n".into(), Value::U64(42));
        obj.insert("neg".into(), Value::I64(-7));
        obj.insert(
            "arr".into(),
            Value::Array(vec![
                Value::Null,
                Value::Bool(true),
                Value::Str("x\n\"".into()),
            ]),
        );
        obj.insert("empty".into(), Value::Object(Map::new()));
        let v = Value::Object(obj);
        let text = json::to_string(&v);
        assert_eq!(json::parse(&text).unwrap(), v);
        let pretty = json::to_string_pretty(&v);
        assert_eq!(json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_impls_round_trip() {
        let data: (Vec<u32>, Option<String>, [f64; 3], i32) =
            (vec![1, 2, 3], Some("hé\t".into()), [0.5, -1.5, 2.0], -9);
        let text = json::to_string(&data.to_value());
        let back: (Vec<u32>, Option<String>, [f64; 3], i32) = json::from_str(&text).unwrap();
        assert_eq!(back, data);

        let mut m: BTreeMap<String, f64> = BTreeMap::new();
        m.insert("a.b".into(), 1.25);
        m.insert("c".into(), -0.5);
        let back: BTreeMap<String, f64> = json::from_str(&json::to_string(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integral_floats_survive_via_integer_values() {
        // `2.0f64` prints as `2`, parses as U64 — f64 deserialize accepts it.
        let x = 2.0f64;
        let text = json::to_string(&x.to_value());
        assert_eq!(text, "2");
        let back: f64 = json::from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn unicode_escapes_parse() {
        let raw: String = json::from_str(r#""aé😀b""#).unwrap();
        assert_eq!(raw, "aé😀b");
        // \u escapes, including a surrogate pair for U+1F600.
        let esc: String = json::from_str(r#""a\u00e9\ud83d\ude00b""#).unwrap();
        assert_eq!(esc, "aé😀b");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(json::parse("{\"a\": }").is_err());
        assert!(json::parse("[1, 2").is_err());
        assert!(json::parse("12 34").is_err());
        assert!(json::from_str::<u64>("-3").is_err());
    }
}
