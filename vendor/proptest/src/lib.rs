//! Offline drop-in subset of `proptest` (see `vendor/README.md`).
//!
//! Supports the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro with `pat in strategy` parameters and an
//!   optional `#![proptest_config(...)]` header;
//! * range strategies (`0u64..100`, `0u8..=2`, `0.0f64..1.0`), tuples of
//!   strategies, [`collection::vec`] and [`option::of`];
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assert_ne!`].
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its seed and values but is not minimised), and the default case count
//! is 64 rather than 256 to keep offline CI fast. Failures print the
//! case number and the `PROPTEST_RNG_SEED` needed to replay the run.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64, u64);

impl TestRng {
    /// Seeded generator (xorshift128+).
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero state.
        TestRng(seed ^ 0x9e37_79b9_7f4a_7c15, seed | 1)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let TestRng(mut a, b) = *self;
        a ^= a << 23;
        a ^= a >> 17;
        a ^= b ^ (b >> 26);
        *self = TestRng(b, a);
        a.wrapping_add(b)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    pub use super::{ProptestConfig, TestRng};

    /// Seed for a named test: `PROPTEST_RNG_SEED` if set, else a stable
    /// hash of the test name (deterministic across runs).
    pub fn rng_for_test(name: &str) -> (TestRng, u64) {
        let seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                // FNV-1a over the name: stable, dependency-free.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                h
            });
        (TestRng::new(seed), seed)
    }
}

/// Something that can generate values of its output type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(v as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(pub usize, pub usize);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n, n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange(r.start, r.end)
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let SizeRange(lo, hi) = self.size;
            let span = (hi - lo) as u64;
            let len = lo + (((rng.next_u64() as u128 * span as u128) >> 64) as usize);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (subset of `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Some(inner)` 75 % of the time and `None`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 3 != 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
    /// Alias module so `prop::collection::vec(...)` etc. resolve.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Assert a condition inside a [`proptest!`] body; on failure the current
/// case is reported (with its replay seed) and the test panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "prop_assert_eq failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "prop_assert_ne failed: both {:?}", a);
    }};
}

/// Define property tests: each `pat in strategy` parameter is drawn
/// freshly per case and the body runs for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pn:pat in $st:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let (mut rng, seed) =
                    $crate::test_runner::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let ($($pn,)+) = ($($crate::Strategy::generate(&($st), &mut rng),)+);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed (replay with PROPTEST_RNG_SEED={}): {}",
                            case + 1, config.cases, seed, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 1u64..10, (a, b) in (0u8..=2, 0.0f64..1.0)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a <= 2);
            prop_assert!((0.0..1.0).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Doc comments and config headers both parse.
        #[test]
        fn vec_and_option(v in prop::collection::vec((0usize..4, 1u32..5), 1..9),
                          o in prop::option::of(3i32..7)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((1..5).contains(b));
            }
            if let Some(x) = o {
                prop_assert!((3..7).contains(&x));
            }
        }
    }

    proptest! {
        #[test]
        fn nested_vec_with_exact_size(rows in crate::collection::vec(
            crate::collection::vec(0.0f64..3.0, 8), 1..6)) {
            for r in &rows {
                prop_assert_eq!(r.len(), 8);
            }
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        let (mut a, sa) = crate::test_runner::rng_for_test("x");
        let (mut b, sb) = crate::test_runner::rng_for_test("x");
        assert_eq!(sa, sb);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
