//! Offline drop-in subset of the `rand` 0.9 API (see `vendor/README.md`).
//!
//! Provides exactly the surface this workspace uses: `SmallRng` seeded
//! via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `random`, `random_bool` and `random_range`. The generator is
//! xoshiro256++ (the algorithm family real `rand` uses for `SmallRng`
//! on 64-bit targets), seeded through SplitMix64 as upstream does, so
//! statistical quality is comparable; exact streams differ from the
//! real crate, which is fine because nothing in this repo depends on
//! upstream's bit-exact sequences — only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::SmallRng;

/// Types that can seed themselves from integers (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as rand_core does for integer seeds.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }
}

impl SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Sampling from the "standard" distribution (uniform over a type's
/// natural unit domain), backing [`Rng::random`].
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard(rng: &mut SmallRng) -> Self;
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard(rng: &mut SmallRng) -> f32 {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard(rng: &mut SmallRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard(rng: &mut SmallRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types uniformly sampleable over a `lo..hi` span (subset of
/// `rand::distr::uniform::SampleUniform`). One blanket [`SampleRange`]
/// impl per range shape hangs off this trait, which is what lets
/// integer-literal ranges (`0..8`) unify with the inferred output type
/// exactly as they do with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_in(lo: Self, hi: Self, inclusive: bool, rng: &mut SmallRng) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in(lo: $t, hi: $t, inclusive: bool, rng: &mut SmallRng) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range in random_range");
                    if lo == <$t>::MIN && hi == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                    let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    lo.wrapping_add(v as $t)
                } else {
                    assert!(lo < hi, "empty range in random_range");
                    // Multiply-shift bounded sampling (Lemire); the tiny
                    // bias of the plain variant is irrelevant at simulator
                    // spans.
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    lo.wrapping_add(v as $t)
                }
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in(lo: $t, hi: $t, _inclusive: bool, rng: &mut SmallRng) -> $t {
                assert!(lo < hi, "empty range in random_range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// A range understood by [`Rng::random_range`] (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from(self, rng: &mut SmallRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng {
    /// Draw from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T;

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool;

    /// Uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for SmallRng {
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(1..=6);
            assert!((1..=6).contains(&w));
            let f: f64 = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let x: f32 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.1));
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut r = SmallRng::seed_from_u64(3);
        let _: u64 = r.random_range(0..=u64::MAX);
    }
}
