//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! This workspace builds in environments with no crates.io access (see
//! `vendor/README.md`), so the few `parking_lot` types it uses are
//! reimplemented here over the standard library. Semantic difference from
//! the real crate: poisoning is swallowed (`lock()` recovers the inner
//! data), which matches `parking_lot`'s poison-free behaviour.

/// A mutual-exclusion lock with `parking_lot`'s poison-free `lock()` API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    ///
    /// Unlike `std`, a panic in another holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow checker guarantees
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
