//! Offline drop-in subset of `serde_derive` (see `vendor/README.md`).
//!
//! Hand-parses the item token stream — no `syn`/`quote` — and emits
//! `impl serde::Serialize` / `impl serde::Deserialize` blocks matching
//! the sibling `serde` stub's `Value`-based traits. Supports the shapes
//! this workspace derives on:
//!
//! * structs with named fields (including `#[serde(default)]` fields),
//!   tuple/newtype structs, and unit structs;
//! * enums with unit, tuple and struct variants, externally tagged as
//!   serde_json does by default.
//!
//! Out of scope (fails with `compile_error!`): generic types, and any
//! `#[serde(...)]` option other than field-level `default`. Fields with
//! function-pointer types would confuse the angle-bracket tracker used
//! to split fields; none exist in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (stub: renders into `serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` (stub: rebuilds from `serde::Value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => generate(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse()
        .expect("serde_derive stub generated invalid Rust")
}

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = ident_at(&toks, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&toks, i).ok_or("expected type name")?;
    i += 1;
    if punct_at(&toks, i, '<') {
        return Err(format!(
            "serde stub derive does not support generic type `{name}`"
        ));
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            _ => return Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("expected enum body for `{name}`")),
        },
        other => return Err(format!("cannot derive serde impls for `{other}`")),
    };
    Ok(Item { name, shape })
}

fn ident_at(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn punct_at(toks: &[TokenTree], i: usize, ch: char) -> bool {
    matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

/// Skip `#[...]` attributes starting at `*i`, reporting whether any of
/// them was `#[serde(default)]` (possibly among a comma list).
fn skip_attrs_collect_default(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while punct_at(toks, *i, '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            default |= attr_has_serde_default(g);
            *i += 2;
        } else {
            *i += 1; // malformed; let rustc report it
        }
    }
    default
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    skip_attrs_collect_default(toks, i);
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if ident_at(toks, *i).as_deref() == Some("pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1; // pub(crate), pub(super), ...
        }
    }
}

fn attr_has_serde_default(bracket: &proc_macro::Group) -> bool {
    let inner: Vec<TokenTree> = bracket.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|tt| matches!(tt, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let default = skip_attrs_collect_default(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = ident_at(&toks, i).ok_or("expected field name")?;
        i += 1;
        if !punct_at(&toks, i, ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        skip_type_until_comma(&toks, &mut i);
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Advance past a type, stopping after the next comma that sits outside
/// all `<...>` nesting (bracket/paren nesting is invisible: those are
/// single `Group` tokens).
fn skip_type_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Count fields of a tuple struct / tuple variant: non-empty segments
/// between top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0;
    let mut segment_has_tokens = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if segment_has_tokens {
                    count += 1;
                }
                segment_has_tokens = false;
            }
            _ => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = ident_at(&toks, i).ok_or("expected variant name")?;
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        skip_type_until_comma(&toks, &mut i);
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// --------------------------------------------------------------- codegen

const SER_HEADER: &str = "#[automatically_derived]\nimpl ::serde::Serialize for ";
const DE_HEADER: &str = "#[automatically_derived]\nimpl ::serde::Deserialize for ";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut b = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                b.push_str(&format!(
                    "__m.insert(::std::string::String::from({n:?}), \
                     ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            b.push_str("::serde::Value::Object(__m)");
            b
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut __o = ::serde::Map::new();\n\
                             __o.insert(::std::string::String::from({vn:?}), {inner});\n\
                             ::serde::Value::Object(__o)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut __v = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__v.insert(::std::string::String::from({n:?}), \
                                 ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n{inner}\
                             let mut __o = ::serde::Map::new();\n\
                             __o.insert(::std::string::String::from({vn:?}), ::serde::Value::Object(__v));\n\
                             ::serde::Value::Object(__o)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!("{SER_HEADER}{name} {{\nfn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n")
}

fn gen_field_get(ty: &str, map: &str, f: &Field) -> String {
    if f.default {
        format!(
            "{n}: match {map}.get({n:?}) {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => ::std::default::Default::default(),\n}},\n",
            n = f.name
        )
    } else {
        format!(
            "{n}: match {map}.get({n:?}) {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => return ::std::result::Result::Err(\
             ::serde::Error::missing_field({ty:?}, {n:?})),\n}},\n",
            n = f.name
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut b = format!(
                "let __m = match __v {{\n\
                 ::serde::Value::Object(m) => m,\n\
                 _ => return ::std::result::Result::Err(\
                 ::serde::Error::expected(\"map for struct {name}\", __v)),\n}};\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                b.push_str(&gen_field_get(name, "__m", f));
            }
            b.push_str("})");
            b
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = match __v {{\n\
                 ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                 _ => return ::std::result::Result::Err(\
                 ::serde::Error::expected(\"array of {n} for struct {name}\", __v)),\n}};\n\
                 ::std::result::Result::Ok({name}({}))",
                gets.join(", ")
            )
        }
        Shape::UnitStruct => format!(
            "match __v {{\n\
             ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
             _ => ::std::result::Result::Err(\
             ::serde::Error::expected(\"null for unit struct {name}\", __v)),\n}}"
        ),
        Shape::Enum(variants) => {
            let has_payload = variants
                .iter()
                .any(|v| !matches!(v.kind, VariantKind::Unit));
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let __a = match __payload {{\n\
                             ::serde::Value::Array(a) if a.len() == {n} => a,\n\
                             _ => return ::std::result::Result::Err(\
                             ::serde::Error::expected(\"array of {n} for variant {vn}\", __payload)),\n}};\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            gets.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut b = format!(
                            "{vn:?} => {{\n\
                             let __f = match __payload {{\n\
                             ::serde::Value::Object(m) => m,\n\
                             _ => return ::std::result::Result::Err(\
                             ::serde::Error::expected(\"map for variant {vn}\", __payload)),\n}};\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            b.push_str(&gen_field_get(name, "__f", f));
                        }
                        b.push_str("})\n}\n");
                        payload_arms.push_str(&b);
                    }
                }
            }
            let payload_binding = if has_payload { "__payload" } else { "_" };
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant({name:?}, __other)),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, {payload_binding}) = __m.iter().next().expect(\"len checked\");\n\
                 match __k.as_str() {{\n\
                 {payload_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant({name:?}, __other)),\n}}\n}}\n\
                 _ => ::std::result::Result::Err(::serde::Error::expected(\
                 \"string or single-key map for enum {name}\", __v)),\n}}"
            )
        }
    };
    format!(
        "{DE_HEADER}{name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
