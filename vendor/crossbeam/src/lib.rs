//! Offline drop-in subset of `crossbeam`'s scoped threads, implemented on
//! `std::thread::scope` (see `vendor/README.md` for why this exists).
//!
//! Only the API surface this workspace uses is provided: [`scope`] and
//! [`thread::Scope::spawn`] with the crossbeam closure shape (the closure
//! receives the scope so it can spawn nested threads).
//!
//! Panic semantics differ slightly from real crossbeam: a panicking
//! spawned thread propagates its panic when the scope exits (via
//! `std::thread::scope`) instead of being returned as `Err`, so callers
//! that `.expect()` the result observe an equivalent abort-with-message.

pub mod thread {
    //! Scoped thread spawning.

    /// A scope for spawning borrowed threads, mirroring
    /// `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, mirroring
    /// `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || {
                let s = Scope { inner };
                f(&s)
            }))
        }
    }

    /// Run `f` with a scope in which borrowed threads can be spawned; all
    /// spawned threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let sums = std::sync::Mutex::new(0u64);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    *sums.lock().unwrap() += part;
                });
            }
        })
        .unwrap();
        assert_eq!(sums.into_inner().unwrap(), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hit = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hit.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(hit.load(std::sync::atomic::Ordering::SeqCst), 1);
    }
}
