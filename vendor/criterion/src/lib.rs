//! Offline drop-in subset of the `criterion` 0.5 bench API (see
//! `vendor/README.md`).
//!
//! Implements the macro and type surface this workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`] — with a simple wall-clock measurement loop:
//! a short warm-up, then timed batches until the group's measurement
//! time elapses, reporting min / median / mean per iteration. No
//! statistics engine, plots or saved baselines; output is one line per
//! benchmark, which keeps `cargo bench` usable offline as a smoke-and-
//! regression harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted, and used
/// to pick how many setup+routine pairs run per timed batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many iterations together.
    SmallInput,
    /// Large inputs: run one iteration per batch.
    LargeInput,
    /// Exactly one iteration per batch.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> u64 {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput | BatchSize::PerIteration => 1,
        }
    }
}

/// Measurement strategies (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement (the criterion default).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// Per-benchmark timing driver handed to the closure of
/// [`BenchmarkGroup::bench_function`].
pub struct Bencher<'a> {
    meas_time: Duration,
    samples: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let batch =
            (Duration::from_millis(5).as_nanos() / once.as_nanos().max(1)).clamp(1, 1 << 16) as u64;
        let deadline = Instant::now() + self.meas_time;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = size.batch_len();
        let deadline = Instant::now() + self.meas_time;
        loop {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(t0.elapsed() / batch as u32);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    meas_time: Duration,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Set the target number of samples (accepted for API compatibility;
    /// the sample count is effectively governed by the measurement time).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set how long each benchmark in the group is measured for.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        // Cap so `cargo bench` stays a practical smoke harness offline.
        self.meas_time = t.min(Duration::from_secs(5));
        self
    }

    /// Set the warm-up time (accepted for API compatibility).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark and print its per-iteration timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut samples: Vec<Duration> = Vec::new();
        let mut b = Bencher {
            meas_time: self.meas_time,
            samples: &mut samples,
        };
        f(&mut b);
        samples.sort_unstable();
        let (min, med, mean) = if samples.is_empty() {
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        } else {
            let total: Duration = samples.iter().sum();
            (
                samples[0],
                samples[samples.len() / 2],
                total / samples.len() as u32,
            )
        };
        println!(
            "bench {:<40} time: [min {:>12?}  median {:>12?}  mean {:>12?}]  ({} samples)",
            format!("{}/{}", self.name, id),
            min,
            med,
            mean,
            samples.len()
        );
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level bench context, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Apply command-line configuration (accepted and ignored; `cargo
    /// bench` harness flags are handled by the generated `main`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            meas_time: Duration::from_secs(3),
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }
}

/// Define a bench group function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Define the bench binary's `main` from a list of groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(20));
        let mut runs = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("t");
        g.measurement_time(Duration::from_millis(10));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
